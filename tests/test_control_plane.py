"""Tests for the control-plane cost model (simulation/costmodel.py).

Covers the pricing math, the immediate-mode ledger's queueing semantics,
the byte-identity of the disabled path, the strict latency tax the timed
experiments must report, and the simulated-mode CPU-occupancy charging.
"""

from __future__ import annotations

import pytest

from repro.analysis.experiments.control_plane import (
    DEGRADED_PHASE,
    MIGRATING_PHASE,
    STEADY_PHASE,
    run_churn_timed,
    run_failover_timed,
)
from repro.core.cluster import SHHCCluster
from repro.core.config import ClusterConfig, HashNodeConfig
from repro.core.membership import MembershipManager
from repro.dedup.fingerprint import synthetic_fingerprint
from repro.network.link import DEFAULT_LINK_LATENCY, GIGABIT_BANDWIDTH, _ImmediateEventSim
from repro.scenarios import run_scenario
from repro.simulation.costmodel import ControlPlaneLedger, CostModel
from repro.simulation.engine import SimulationError, Simulator


def _small_config(num_nodes: int = 3, replication_factor: int = 2) -> ClusterConfig:
    return ClusterConfig(
        num_nodes=num_nodes,
        replication_factor=replication_factor,
        virtual_nodes=16,
        node=HashNodeConfig(ram_cache_entries=1_024, bloom_expected_items=20_000),
    )


def _workload(count: int, distinct: int, seed: int = 5):
    import random

    rng = random.Random(seed)
    return [synthetic_fingerprint(rng.randrange(distinct)) for _ in range(count)]


class TestCostModel:
    def test_transfer_time_prices_hops_and_bytes(self):
        model = CostModel()
        assert model.transfer_time(0, 64, 2) == pytest.approx(2 * DEFAULT_LINK_LATENCY)
        one_entry = model.replica_transfer_time(1)
        assert one_entry == pytest.approx(
            model.replica_hops * model.hop_latency + 64 / GIGABIT_BANDWIDTH
        )
        # Bytes scale linearly, the hop latency is paid once per message.
        assert model.replica_transfer_time(10) == pytest.approx(
            model.replica_hops * model.hop_latency + 10 * 64 / GIGABIT_BANDWIDTH
        )

    def test_cpu_prices_are_per_entry(self):
        model = CostModel(replica_write_cpu=3e-6, migration_entry_cpu=2e-6)
        assert model.replica_apply_cpu(5) == pytest.approx(15e-6)
        assert model.migration_cpu(4) == pytest.approx(8e-6)

    def test_validation(self):
        with pytest.raises(ValueError):
            CostModel(replica_write_cpu=-1.0)
        with pytest.raises(ValueError):
            CostModel(bandwidth=0.0)
        with pytest.raises(ValueError):
            CostModel(replica_hops=-1)


class _Reply:
    """Minimal stand-in: the ledger only reads ``service_time``."""

    def __init__(self, service_time: float) -> None:
        self.service_time = service_time


class TestControlPlaneLedger:
    def test_begin_service_queues_fifo_per_node(self):
        ledger = ControlPlaneLedger(CostModel())
        start, end = ledger.begin_service("a", 2.0)
        assert (start, end) == (0.0, 2.0)
        start, end = ledger.begin_service("a", 1.0)  # queues behind the first
        assert (start, end) == (2.0, 3.0)
        start, end = ledger.begin_service("b", 1.0)  # other node: idle
        assert (start, end) == (0.0, 1.0)
        ledger.advance_to(10.0)
        start, end = ledger.begin_service("a", 1.0)  # backlog drained by now
        assert (start, end) == (10.0, 11.0)

    def test_defer_delays_later_lookups(self):
        ledger = ControlPlaneLedger(CostModel())
        done = ledger.defer("a", at=5.0, cpu_time=2.0)
        assert done == 7.0
        assert ledger.control_plane_cpu_seconds == pytest.approx(2.0)
        # A lookup arriving at t=0 still queues behind the deferred work.
        _start, end = ledger.begin_service("a", 1.0)
        assert end == 8.0
        assert ledger.backlog() == pytest.approx(8.0)

    def test_charge_bucket_records_per_phase(self):
        ledger = ControlPlaneLedger(CostModel())
        ledger.charge_bucket("a", [_Reply(1.0), _Reply(1.0)])
        ledger.set_phase(DEGRADED_PHASE)
        ledger.charge_bucket("a", [_Reply(1.0)])
        phases = ledger.phases
        assert phases[STEADY_PHASE].count == 2
        assert phases[DEGRADED_PHASE].count == 1
        # Second bucket queued behind the first: latency 2 + 1 from t=0.
        assert phases[DEGRADED_PHASE].percentile(0.5) == pytest.approx(3.0)
        assert ledger.counters.get("lookups") == 3

    def test_charge_replica_writes_defers_on_targets(self):
        model = CostModel()
        ledger = ControlPlaneLedger(model)
        ledger.charge_bucket("a", [_Reply(1.0)])
        ledger.charge_replica_writes({"b": 4})
        expected = 1.0 + model.replica_transfer_time(4) + model.replica_apply_cpu(4)
        assert ledger.busy_until["b"] == pytest.approx(expected)
        assert ledger.counters.get("replica_writes") == 4
        assert ledger.counters.get("replica_messages") == 1

    def test_charge_migration_chains_export_wire_import(self):
        model = CostModel()
        ledger = ControlPlaneLedger(model)
        ledger.charge_migration({("a", "b"): 10})
        export_done = model.migration_cpu(10)
        assert ledger.busy_until["a"] == pytest.approx(export_done)
        assert ledger.busy_until["b"] == pytest.approx(
            export_done + model.migration_transfer_time(10) + model.migration_cpu(10)
        )
        assert ledger.counters.get("migration_entries") == 10


class TestDisabledPathIdentity:
    """Charging must never change verdicts, counters or replica writes."""

    def test_enabled_replies_identical_to_disabled(self):
        fingerprints = _workload(4_000, 1_500)
        plain = SHHCCluster(_small_config())
        charged = SHHCCluster(_small_config(), cost_model=CostModel())
        for start in range(0, len(fingerprints), 256):
            batch = fingerprints[start:start + 256]
            assert charged.lookup_batch_replies(batch) == plain.lookup_batch_replies(batch)
        assert charged.read_repairs == plain.read_repairs
        assert charged.failovers == plain.failovers
        assert charged.total_stored == plain.total_stored
        for name in plain.nodes:
            assert (
                charged.nodes[name].counters.as_dict()
                == plain.nodes[name].counters.as_dict()
            )
        # ...and the enabled cluster actually charged something.
        assert charged.ledger is not None
        assert charged.ledger.counters.get("replica_writes") > 0
        assert plain.ledger is None

    def test_migration_identical_with_charging(self):
        fingerprints = _workload(2_000, 1_000)
        plain = SHHCCluster(_small_config())
        charged = SHHCCluster(_small_config(), cost_model=CostModel())
        plain.lookup_batch(fingerprints)
        charged.lookup_batch(fingerprints)
        plain_report = MembershipManager(plain).add_node("hashnode-9")
        charged_report = MembershipManager(charged).add_node("hashnode-9")
        assert charged_report.entries_moved == plain_report.entries_moved
        assert charged_report.source_breakdown == plain_report.source_breakdown
        assert charged.total_stored == plain.total_stored
        assert charged.ledger.counters.get("migration_entries") == plain_report.entries_moved


class TestTimedExperiments:
    def test_failover_timed_degraded_p99_strictly_higher(self):
        result = run_failover_timed(scale=0.001, seed=0)
        steady, degraded = result.phases[STEADY_PHASE], result.phases[DEGRADED_PHASE]
        assert steady.count > 0 and degraded.count > 0
        assert degraded.p99 > steady.p99
        assert result.p99_tax > 1.0
        assert result.throughput > 0.0
        assert result.counters["crashes"] > 0
        assert result.counters["recoveries"] > 0
        assert result.counters["replica_writes"] > 0
        assert result.control_plane_cpu_seconds > 0.0

    def test_churn_timed_migrating_p99_strictly_higher(self):
        result = run_churn_timed(scale=0.001, seed=0)
        steady, migrating = result.phases[STEADY_PHASE], result.phases[MIGRATING_PHASE]
        assert steady.count > 0 and migrating.count > 0
        assert migrating.p99 > steady.p99
        assert result.p99_tax > 1.0
        assert result.counters["joins"] > 0
        assert result.counters["migration_entries"] > 0

    def test_presets_report_tax_metrics(self):
        failover = run_scenario("failover_timed", scale=0.001)
        assert failover.metrics["p99_tax"] > 1.0
        assert failover.metrics["degraded_p99_latency_us"] > failover.metrics["steady_p99_latency_us"]
        churn = run_scenario("churn_timed", scale=0.001)
        assert churn.metrics["p99_tax"] > 1.0
        assert churn.metrics["migrating_p99_latency_us"] > churn.metrics["steady_p99_latency_us"]

    def test_validation(self):
        with pytest.raises(ValueError):
            run_failover_timed(scale=0.001, offered_load=1.5)
        with pytest.raises(ValueError):
            # One giant batch: too short for an outage plan starting at t=1.
            run_failover_timed(scale=0.0001, batch_size=1_000_000)
        with pytest.raises(ValueError):
            run_churn_timed(scale=0.001, num_nodes=1)


class TestSimulatedModeCharging:
    def test_occupy_cpu_contends_on_the_simulated_clock(self):
        sim = Simulator()
        config = _small_config()
        cluster = SHHCCluster(config, sim=sim, cost_model=CostModel())
        assert cluster.ledger is None  # sim mode charges node CPU, not a ledger
        node = cluster.nodes["hashnode-0"]
        process = node.occupy_cpu(duration=2e-3, delay=1e-3)
        assert process is not None
        sim.run()
        assert sim.now == pytest.approx(3e-3)
        assert node.counters.get("control_plane_tasks") == 1
        assert node._cpu.total_requests == 1

    def test_charge_replica_writes_occupies_target_cpu(self):
        sim = Simulator()
        model = CostModel()
        cluster = SHHCCluster(_small_config(), sim=sim, cost_model=model)
        cluster._charge_replica_writes({"hashnode-1": 3})
        sim.run()
        assert sim.now == pytest.approx(
            model.replica_transfer_time(3) + model.replica_apply_cpu(3)
        )
        assert cluster.nodes["hashnode-1"].counters.get("control_plane_tasks") == 1

    def test_charge_migration_occupies_both_ends(self):
        sim = Simulator()
        model = CostModel()
        cluster = SHHCCluster(_small_config(), sim=sim, cost_model=model)
        cluster._charge_migration({("hashnode-0", "hashnode-1"): 5})
        sim.run()
        assert cluster.nodes["hashnode-0"].counters.get("control_plane_tasks") == 1
        assert cluster.nodes["hashnode-1"].counters.get("control_plane_tasks") == 1
        # A source that already left the cluster is skipped, not an error.
        cluster._charge_migration({("gone", "hashnode-2"): 5})
        sim.run()
        assert cluster.nodes["hashnode-2"].counters.get("control_plane_tasks") == 1

    def test_occupy_cpu_is_noop_in_immediate_mode(self):
        node = SHHCCluster(_small_config()).nodes["hashnode-0"]
        assert node.occupy_cpu(1.0) is None
        with pytest.raises(ValueError):
            SHHCCluster(_small_config(), sim=Simulator()).nodes["hashnode-0"].occupy_cpu(-1.0)


class TestImmediateEventSim:
    def test_zero_delay_dispatches_synchronously(self):
        fired = []
        _ImmediateEventSim().schedule(0.0, fired.append, "x")
        assert fired == ["x"]

    def test_positive_delay_is_rejected(self):
        with pytest.raises(SimulationError):
            _ImmediateEventSim().schedule(1e-6, lambda: None)
