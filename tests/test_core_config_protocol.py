"""Tests for cluster/node configuration and the lookup protocol types."""

from __future__ import annotations

import pytest

from repro.core.config import ClusterConfig, HashNodeConfig
from repro.core.protocol import (
    BatchLookupReply,
    BatchLookupRequest,
    LookupReply,
    LookupRequest,
    REQUEST_OVERHEAD_BYTES,
    ServedFrom,
)
from repro.dedup.fingerprint import FINGERPRINT_BYTES, synthetic_fingerprint


class TestHashNodeConfig:
    def test_defaults_are_sane(self):
        config = HashNodeConfig()
        assert config.ram_cache_entries > 0
        assert 0 < config.bloom_false_positive_rate < 1
        assert config.cpu_per_lookup > 0

    def test_scaled_for_sets_bloom_capacity(self):
        config = HashNodeConfig().scaled_for(123_456)
        assert config.bloom_expected_items == 123_456

    def test_scaled_for_validation_and_floor(self):
        with pytest.raises(ValueError):
            HashNodeConfig().scaled_for(0)
        assert HashNodeConfig().scaled_for(10).bloom_expected_items == 1024

    def test_frozen(self):
        with pytest.raises(AttributeError):
            HashNodeConfig().ram_cache_entries = 5  # type: ignore[misc]


class TestClusterConfig:
    def test_node_names(self):
        config = ClusterConfig(num_nodes=3)
        assert config.node_names == ["hashnode-0", "hashnode-1", "hashnode-2"]

    def test_with_nodes_copies_everything_else(self):
        config = ClusterConfig(num_nodes=2, replication_factor=2)
        grown = config.with_nodes(8)
        assert grown.num_nodes == 8
        assert grown.replication_factor == 2

    def test_validation(self):
        with pytest.raises(ValueError):
            ClusterConfig(num_nodes=0)
        with pytest.raises(ValueError):
            ClusterConfig(num_nodes=2, replication_factor=0)
        with pytest.raises(ValueError):
            ClusterConfig(num_nodes=2, replication_factor=3)
        with pytest.raises(ValueError):
            ClusterConfig(virtual_nodes=-1)
        with pytest.raises(ValueError):
            ClusterConfig(partition_bits=4)

    def test_custom_prefix(self):
        config = ClusterConfig(num_nodes=2, node_name_prefix="shard")
        assert config.node_names == ["shard-0", "shard-1"]


class TestProtocolMessages:
    def test_single_lookup_sizes(self):
        request = LookupRequest(synthetic_fingerprint(1))
        assert request.payload_bytes == REQUEST_OVERHEAD_BYTES + FINGERPRINT_BYTES
        reply = LookupReply(synthetic_fingerprint(1), True, ServedFrom.RAM)
        assert reply.payload_bytes > 0

    def test_batch_request_size_scales_with_fingerprints(self):
        small = BatchLookupRequest([synthetic_fingerprint(1)])
        large = BatchLookupRequest([synthetic_fingerprint(i) for i in range(128)])
        assert len(small) == 1 and len(large) == 128
        assert large.payload_bytes - small.payload_bytes == 127 * FINGERPRINT_BYTES

    def test_batch_request_requires_fingerprints(self):
        with pytest.raises(ValueError):
            BatchLookupRequest([])

    def test_batch_reply_accounting(self):
        replies = [
            LookupReply(synthetic_fingerprint(i), i % 2 == 0, ServedFrom.RAM)
            for i in range(10)
        ]
        batch = BatchLookupReply(replies=replies, node_id="n0")
        assert len(batch) == 10
        assert batch.duplicates == 5
        assert batch.uniques == 5
        assert len(batch.unique_fingerprints()) == 5
        assert all(
            fp == reply.fingerprint
            for fp, reply in zip(batch.unique_fingerprints(), [r for r in replies if not r.is_duplicate])
        )

    def test_served_from_values(self):
        assert {ServedFrom.RAM.value, ServedFrom.SSD.value, ServedFrom.NEW.value} == {
            "ram",
            "ssd",
            "new",
        }
