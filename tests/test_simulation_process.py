"""Tests for the generator-based process model."""

from __future__ import annotations

import pytest

from repro.simulation.engine import SimulationError, Simulator
from repro.simulation.process import Interrupt, Process, run_process


class TestBasicProcesses:
    def test_process_advances_clock_by_timeouts(self, sim):
        log = []

        def worker():
            yield sim.timeout(1.0)
            log.append(sim.now)
            yield sim.timeout(2.0)
            log.append(sim.now)

        run_process(sim, worker())
        sim.run()
        assert log == [1.0, 3.0]

    def test_process_return_value_becomes_event_value(self, sim):
        def worker():
            yield sim.timeout(1.0)
            return "result"

        process = run_process(sim, worker())
        sim.run()
        assert process.value == "result"

    def test_yield_plain_number_is_a_timeout(self, sim):
        def worker():
            yield 2.5
            return sim.now

        process = run_process(sim, worker())
        sim.run()
        assert process.value == 2.5

    def test_yield_event_receives_its_value(self, sim):
        def worker():
            value = yield sim.timeout(1.0, value="payload")
            return value

        process = run_process(sim, worker())
        sim.run()
        assert process.value == "payload"

    def test_yield_invalid_object_fails_process(self, sim):
        def worker():
            yield "not an event"

        process = run_process(sim, worker())
        sim.run()
        assert process.triggered and not process.ok
        assert isinstance(process.exception, SimulationError)

    def test_requires_generator(self, sim):
        def not_a_generator():
            return 42

        with pytest.raises(TypeError):
            Process(sim, not_a_generator())  # type: ignore[arg-type]

    def test_exception_in_process_fails_its_event(self, sim):
        def worker():
            yield sim.timeout(1.0)
            raise RuntimeError("exploded")

        process = run_process(sim, worker())
        sim.run()
        assert not process.ok
        assert isinstance(process.exception, RuntimeError)

    def test_is_alive_lifecycle(self, sim):
        def worker():
            yield sim.timeout(5.0)

        process = run_process(sim, worker())
        assert process.is_alive
        sim.run()
        assert not process.is_alive


class TestProcessComposition:
    def test_process_waits_on_another_process(self, sim):
        def inner():
            yield sim.timeout(2.0)
            return "inner-done"

        def outer():
            result = yield run_process(sim, inner())
            return (sim.now, result)

        process = run_process(sim, outer())
        sim.run()
        assert process.value == (2.0, "inner-done")

    def test_failure_propagates_to_waiting_process(self, sim):
        def inner():
            yield sim.timeout(1.0)
            raise ValueError("inner failure")

        def outer():
            try:
                yield run_process(sim, inner())
            except ValueError as exc:
                return f"caught {exc}"
            return "not caught"

        process = run_process(sim, outer())
        sim.run()
        assert process.value == "caught inner failure"

    def test_two_processes_interleave(self, sim):
        log = []

        def worker(name, delay):
            for _ in range(3):
                yield sim.timeout(delay)
                log.append((name, sim.now))

        run_process(sim, worker("fast", 1.0))
        run_process(sim, worker("slow", 2.0))
        sim.run()
        # Per-process timelines are what the model guarantees; ordering of
        # different processes at the same instant is implementation detail.
        assert [t for name, t in log if name == "fast"] == [1.0, 2.0, 3.0]
        assert [t for name, t in log if name == "slow"] == [2.0, 4.0, 6.0]

    def test_all_of_processes(self, sim):
        def worker(delay, value):
            yield sim.timeout(delay)
            return value

        combined = sim.all_of([run_process(sim, worker(1.0, "a")), run_process(sim, worker(3.0, "b"))])
        sim.run()
        assert combined.value == ["a", "b"]
        assert sim.now == 3.0


class TestKillAndInterrupt:
    def test_killed_process_stops_running(self, sim):
        log = []

        def worker():
            yield sim.timeout(1.0)
            log.append("first")
            yield sim.timeout(10.0)
            log.append("second")

        process = run_process(sim, worker())
        sim.schedule(2.0, process.kill)
        sim.run()
        assert log == ["first"]
        assert process.triggered

    def test_kill_after_completion_is_noop(self, sim):
        def worker():
            yield sim.timeout(1.0)
            return "done"

        process = run_process(sim, worker())
        sim.run()
        process.kill()
        assert process.value == "done"

    def test_interrupt_raises_inside_process(self, sim):
        log = []

        def worker():
            try:
                yield sim.timeout(10.0)
            except Interrupt as interrupt:
                log.append(("interrupted", sim.now, interrupt.cause))
            return "finished"

        process = run_process(sim, worker())
        sim.schedule(2.0, process.interrupt, "reason")
        sim.run()
        assert log == [("interrupted", 2.0, "reason")]
        assert process.value == "finished"
