"""Tests for the storage device models."""

from __future__ import annotations

import pytest

from repro.simulation.engine import Simulator
from repro.simulation.process import run_process
from repro.storage.devices import (
    HDD_SPEC,
    RAM_SPEC,
    SSD_SPEC,
    DeviceSpec,
    StorageDevice,
    make_hdd,
    make_ram,
    make_ssd,
)


class TestDeviceSpecs:
    def test_latency_ordering_ram_ssd_hdd(self):
        ram = RAM_SPEC.read_time(4096)
        ssd = SSD_SPEC.read_time(4096)
        hdd = HDD_SPEC.read_time(4096)
        assert ram < ssd < hdd

    def test_ssd_write_slower_than_read(self):
        assert SSD_SPEC.write_time(4096) > SSD_SPEC.read_time(4096)

    def test_hdd_sequential_avoids_seek(self):
        random_access = HDD_SPEC.read_time(4096, random_access=True)
        sequential = HDD_SPEC.read_time(4096, random_access=False)
        assert sequential < random_access
        assert random_access - sequential == pytest.approx(HDD_SPEC.seek_latency)

    def test_read_time_scales_with_size(self):
        small = SSD_SPEC.read_time(4096)
        large = SSD_SPEC.read_time(4096 * 64)
        assert large > small
        assert large - small == pytest.approx(4096 * 63 / SSD_SPEC.read_bandwidth)

    def test_factory_overrides(self):
        device = make_ssd(read_latency=1e-3)
        assert device.spec.read_latency == 1e-3
        assert device.spec.write_latency == SSD_SPEC.write_latency

    def test_factory_rejects_unknown_override(self):
        with pytest.raises(TypeError):
            make_ram(bogus_field=1.0)


class TestImmediateMode:
    def test_read_returns_triggered_event_with_service_time(self):
        device = make_ssd()
        event = device.read(4096)
        assert event.triggered
        assert event.value == pytest.approx(device.read_cost(4096))

    def test_counters_accumulate(self):
        device = make_ssd()
        device.read(4096)
        device.read(4096)
        device.write(4096)
        assert device.reads == 2
        assert device.writes == 1
        assert device.busy_time > 0

    def test_busy_accounts_time_without_counting_access(self):
        device = make_ssd()
        before = device.busy_time
        event = device.busy(0.5)
        assert event.triggered and event.value == 0.5
        assert device.busy_time == pytest.approx(before + 0.5)
        assert device.reads == 0

    def test_busy_rejects_negative_duration(self):
        with pytest.raises(ValueError):
            make_ssd().busy(-1.0)

    def test_utilization(self):
        device = make_hdd()
        device.read(4096)
        elapsed = device.busy_time * 2
        assert device.utilization(elapsed) == pytest.approx(0.5)
        assert device.utilization(0.0) == 0.0


class TestSimulatedMode:
    def test_read_completes_after_service_time(self, sim):
        device = make_ssd(sim)
        finished = []
        device.read(4096).add_callback(lambda _e: finished.append(sim.now))
        sim.run()
        assert finished == [pytest.approx(device.read_cost(4096))]

    def test_queueing_with_concurrency_one(self, sim):
        spec = DeviceSpec(
            name="serial-ssd",
            read_latency=1e-3,
            write_latency=1e-3,
            read_bandwidth=1e9,
            write_bandwidth=1e9,
            concurrency=1,
        )
        device = StorageDevice(spec, sim)
        finish_times = []
        for _ in range(3):
            device.read(0).add_callback(lambda _e: finish_times.append(sim.now))
        sim.run()
        assert finish_times == [
            pytest.approx(1e-3),
            pytest.approx(2e-3),
            pytest.approx(3e-3),
        ]

    def test_concurrency_allows_parallel_access(self, sim):
        spec = DeviceSpec(
            name="parallel-ssd",
            read_latency=1e-3,
            write_latency=1e-3,
            read_bandwidth=1e9,
            write_bandwidth=1e9,
            concurrency=2,
        )
        device = StorageDevice(spec, sim)
        finish_times = []
        for _ in range(2):
            device.read(0).add_callback(lambda _e: finish_times.append(sim.now))
        sim.run()
        assert finish_times == [pytest.approx(1e-3), pytest.approx(1e-3)]

    def test_process_can_wait_on_device(self, sim):
        device = make_ram(sim)

        def worker():
            yield device.read(64)
            return sim.now

        process = run_process(sim, worker())
        sim.run()
        assert process.value == pytest.approx(device.read_cost(64))
