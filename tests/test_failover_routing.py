"""Failover correctness of the replica-aware batch routing.

Pins the historical bug where ``lookup_batch_replies`` failed over an entire
per-owner batch to the replica set of its *first* fingerprint, which served
fingerprints from nodes outside their own replica sets under consistent
hashing (duplicates misreported as new, replicas polluted).
"""

from __future__ import annotations

import pytest

from repro.core.batching import split_batch_by_owner, split_batch_by_replica_set
from repro.core.cluster import SHHCCluster
from repro.core.config import ClusterConfig, HashNodeConfig
from repro.core.protocol import ServedFrom
from repro.dedup.fingerprint import synthetic_fingerprint


def make_cluster(num_nodes=5, replication=1, virtual_nodes=0) -> SHHCCluster:
    config = ClusterConfig(
        num_nodes=num_nodes,
        node=HashNodeConfig(ram_cache_entries=512, bloom_expected_items=50_000, ssd_buckets=1 << 10),
        replication_factor=replication,
        virtual_nodes=virtual_nodes,
    )
    return SHHCCluster(config)


def oracle_verdicts(fingerprints):
    """Exact dedup ground truth: duplicate iff the digest was seen before."""
    seen = set()
    verdicts = []
    for fingerprint in fingerprints:
        verdicts.append(fingerprint.digest in seen)
        seen.add(fingerprint.digest)
    return verdicts


class TestBatchMatchesSequentialUnderFailures:
    """Batch and single-lookup paths must agree fingerprint-for-fingerprint."""

    @pytest.mark.parametrize("virtual_nodes", [0, 64], ids=["range", "ring"])
    @pytest.mark.parametrize("replication", [1, 2, 3])
    def test_batch_equals_sequential_through_crash_and_recovery(self, virtual_nodes, replication):
        fingerprints = [synthetic_fingerprint(i % 150) for i in range(600)]
        phases = [fingerprints[0:200], fingerprints[200:400], fingerprints[400:600]]
        batch_cluster = make_cluster(replication=replication, virtual_nodes=virtual_nodes)
        single_cluster = make_cluster(replication=replication, virtual_nodes=virtual_nodes)
        victim = batch_cluster.node_names[1]

        batch_verdicts, single_verdicts = [], []
        for index, phase in enumerate(phases):
            # Phase 1 runs degraded (one node down) when replicas exist;
            # with replication_factor 1 a downed owner is unservable, so the
            # schedule only applies to replicated clusters.
            if replication > 1:
                if index == 1:
                    batch_cluster.mark_down(victim)
                    single_cluster.mark_down(victim)
                elif index == 2:
                    batch_cluster.mark_up(victim)
                    single_cluster.mark_up(victim)
            batch_verdicts.extend(r.is_duplicate for r in batch_cluster.lookup_batch(phase))
            single_verdicts.extend(single_cluster.lookup(fp).is_duplicate for fp in phase)

        assert batch_verdicts == single_verdicts
        if replication > 1:
            # One node down at a time must not cost a single dedup verdict.
            assert batch_verdicts == oracle_verdicts(fingerprints)
        assert len(batch_cluster) == len(single_cluster)
        assert batch_cluster.total_stored == single_cluster.total_stored

    def test_regression_batch_failover_uses_per_fingerprint_replica_sets(self):
        """The cluster.py:158 bug: one blanket failover target per sub-batch.

        With consistent hashing the successors of two fingerprints sharing a
        primary generally differ, so failing the whole sub-batch over to the
        first fingerprint's successor served lookups from nodes that never
        stored them.  Every reply must come from the fingerprint's own
        replica set and recognise the stored duplicate.
        """
        cluster = make_cluster(num_nodes=5, replication=2, virtual_nodes=64)
        fingerprints = [synthetic_fingerprint(i) for i in range(400)]
        cluster.lookup_batch(fingerprints)
        stored_before = cluster.total_stored

        victim = cluster.node_names[0]
        owned_by_victim = [fp for fp in fingerprints if cluster.owner_of(fp) == victim]
        assert owned_by_victim, "test requires the victim to own some fingerprints"
        failover_targets = {cluster.replica_set(fp)[1] for fp in owned_by_victim}
        assert len(failover_targets) > 1, "ring must spread successors for this regression"

        cluster.mark_down(victim)
        replies = cluster.lookup_batch_replies(fingerprints)
        for fingerprint, reply in zip(fingerprints, replies):
            assert reply.is_duplicate is True
            assert reply.node_id in cluster.replica_set(fingerprint)
            assert reply.node_id != victim
        # No replica pollution: failover lookups must not create new copies.
        assert cluster.total_stored == stored_before

    def test_read_repair_backfills_recovered_primary(self):
        cluster = make_cluster(num_nodes=4, replication=2)
        fingerprint = synthetic_fingerprint(7)
        primary = cluster.owner_of(fingerprint)

        cluster.mark_down(primary)
        assert cluster.lookup(fingerprint).is_duplicate is False
        assert fingerprint not in cluster.nodes[primary]

        cluster.mark_up(primary)
        reply = cluster.lookup_reply(fingerprint)
        assert reply.is_duplicate is True
        assert reply.served_from is ServedFrom.REPAIR
        assert cluster.read_repairs == 1
        # The recovered primary now holds the copy it missed.
        assert fingerprint in cluster.nodes[primary]
        # And the verdict stays an ordinary duplicate afterwards.
        assert cluster.lookup_reply(fingerprint).served_from in (ServedFrom.RAM, ServedFrom.SSD)


class TestReplicaWriteStats:
    def test_replica_writes_do_not_inflate_lookup_stats(self):
        cluster = make_cluster(num_nodes=4, replication=3)
        fingerprints = [synthetic_fingerprint(i) for i in range(120)]
        cluster.lookup_batch(fingerprints)

        metrics = cluster.metrics()
        assert metrics.total_lookups == 120  # replica writes are not lookups
        assert metrics.distinct == 120
        assert metrics.total_stored == 360
        assert sum(node.lookup_latency.count for node in cluster.nodes.values()) == 120
        assert sum(
            node.counters.get("replica_inserts") for node in cluster.nodes.values()
        ) == 240
        assert cluster.duplicate_ratio() == 0.0

        cluster.lookup_batch(fingerprints)
        assert cluster.metrics().total_lookups == 240
        assert cluster.duplicate_ratio() == pytest.approx(0.5)

    def test_len_counts_distinct_not_replicas(self):
        cluster = make_cluster(num_nodes=4, replication=2)
        fingerprints = [synthetic_fingerprint(i) for i in range(50)]
        cluster.lookup_batch(fingerprints)
        assert len(cluster) == 50
        assert cluster.distinct_fingerprints() == 50
        assert cluster.total_stored == 100
        as_dict = cluster.metrics().as_dict()
        assert as_dict["distinct"] == 50
        assert as_dict["total_stored"] == 100


class TestBatchIdThreading:
    def test_cluster_assigns_monotonic_batch_ids(self):
        cluster = make_cluster()
        fingerprints = [synthetic_fingerprint(i) for i in range(10)]
        assert cluster.last_batch_id == 0
        cluster.lookup_batch_replies(fingerprints)
        assert cluster.last_batch_id == 1
        cluster.lookup_batch_replies(fingerprints)
        assert cluster.last_batch_id == 2

    def test_split_by_replica_set_stamps_batch_id(self):
        cluster = make_cluster(num_nodes=3, replication=2)
        fingerprints = [synthetic_fingerprint(i) for i in range(40)]
        split = split_batch_by_replica_set(
            fingerprints, cluster.partitioner, 2, batch_id=7, client_id="c1"
        )
        for request, _positions in split.values():
            assert request.batch_id == 7
            assert request.client_id == "c1"


class TestSplitByReplicaSet:
    def test_matches_owner_split_when_all_nodes_up(self):
        cluster = make_cluster(num_nodes=4, virtual_nodes=64)
        fingerprints = [synthetic_fingerprint(i) for i in range(200)]
        by_owner = split_batch_by_owner(fingerprints, cluster.partitioner)
        by_replica = split_batch_by_replica_set(fingerprints, cluster.partitioner, 1)
        assert {n: positions for n, (_r, positions) in by_owner.items()} == {
            n: positions for n, (_r, positions) in by_replica.items()
        }

    def test_routes_around_down_nodes(self):
        cluster = make_cluster(num_nodes=4, replication=2, virtual_nodes=64)
        fingerprints = [synthetic_fingerprint(i) for i in range(200)]
        victim = cluster.node_names[2]
        cluster.mark_down(victim)
        split = split_batch_by_replica_set(
            fingerprints, cluster.partitioner, 2, is_down=cluster.is_down
        )
        assert victim not in split
        covered = sorted(pos for _r, positions in split.values() for pos in positions)
        assert covered == list(range(200))

    def test_raises_when_no_live_replica(self):
        cluster = make_cluster(num_nodes=2, replication=1)
        fingerprint = synthetic_fingerprint(5)
        cluster.mark_down(cluster.owner_of(fingerprint))
        with pytest.raises(RuntimeError, match="no live replica"):
            split_batch_by_replica_set(
                [fingerprint], cluster.partitioner, 1, is_down=cluster.is_down
            )
