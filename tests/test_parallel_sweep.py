"""Parallel sweep executor: determinism, error rows, strict mode, aliases.

``run_sweep(..., workers=N)`` farms grid points out to a process pool.
Every point is independently seeded, so the sweep result -- including its
JSON serialization -- must be byte-identical to a sequential run for any
worker count and completion order; a failing grid point must produce the
same error row either way.  The alias-hoisting fix rides along: aliased
and canonical axis names must emit identical sweep JSON (aliases are
resolved once per sweep, not once per point).
"""

from __future__ import annotations

import pytest

from repro.scenarios import (
    ScenarioSpec,
    SpecError,
    SweepGrid,
    run_sweep,
    spec_for,
)
from repro.scenarios.engine import canonicalize_grid

# One small preset spec shared by the determinism tests: big enough to be
# a real scenario, small enough to keep the suite fast.
SPEC = spec_for("failover", scale=0.0002)


def small_grid(**axes):
    return SweepGrid(axes=axes or {"replication_factor": [1, 2]})


class TestParallelDeterminism:
    def test_parallel_json_byte_identical_to_sequential(self):
        grid = small_grid()
        sequential = run_sweep(SPEC, grid)
        parallel = run_sweep(SPEC, grid, workers=4)
        assert sequential.to_json() == parallel.to_json()
        assert [run.point for run in parallel.runs] == list(grid.points())

    def test_parallel_json_identical_with_failing_point(self):
        # replication_factor=8 > num_nodes=4 raises inside the runner and
        # must surface as the same error row on both paths.
        grid = small_grid(replication_factor=[2, 8, 3])
        sequential = run_sweep(SPEC, grid)
        parallel = run_sweep(SPEC, grid, workers=3)
        assert sequential.to_json() == parallel.to_json()
        failed = [run for run in parallel.runs if not run.ok]
        assert len(failed) == 1
        assert failed[0].point == {"replication_factor": 8}
        assert failed[0].error.startswith("ValueError:")

    def test_strict_mode_raises_original_exception_type(self):
        grid = small_grid(replication_factor=[8])
        with pytest.raises(ValueError):
            run_sweep(SPEC, grid, strict=True)
        with pytest.raises(ValueError):
            run_sweep(SPEC, grid, strict=True, workers=2)

    def test_progress_fires_in_grid_order(self):
        grid = small_grid()
        events = []
        run_sweep(
            SPEC,
            grid,
            workers=2,
            progress=lambda point, run: events.append((dict(point), run is None)),
        )
        points = list(grid.points())
        expected = []
        for point in points:
            expected.append((point, True))
            expected.append((point, False))
        assert events == expected

    def test_workers_must_be_positive(self):
        with pytest.raises(SpecError):
            run_sweep(SPEC, small_grid(), workers=0)


class TestAliasHoisting:
    def test_aliased_and_canonical_axes_emit_identical_json(self):
        aliased = run_sweep(SPEC, SweepGrid(axes={"nodes": [3, 4]}))
        canonical = run_sweep(SPEC, SweepGrid(axes={"num_nodes": [3, 4]}))
        assert aliased.to_json() == canonical.to_json()
        assert list(aliased.grid.axes) == ["num_nodes"]
        assert all("num_nodes" in run.point for run in aliased.runs)

    def test_canonicalize_grid_passthrough_and_rename(self):
        canonical = SweepGrid(axes={"num_nodes": [2, 3]})
        assert canonicalize_grid(canonical) is canonical
        renamed = canonicalize_grid(SweepGrid(axes={"nodes": [2, 3], "seed": [1]}))
        assert list(renamed.axes) == ["num_nodes", "seed"]
        assert renamed.axes["num_nodes"] == [2, 3]

    def test_alias_collision_is_rejected(self):
        with pytest.raises(SpecError):
            canonicalize_grid(SweepGrid(axes={"nodes": [2], "num_nodes": [3]}))

    def test_unknown_axis_still_fails_fast(self):
        from repro.scenarios import UnknownSpecKeyError

        with pytest.raises(UnknownSpecKeyError):
            run_sweep(SPEC, SweepGrid(axes={"not_a_key": [1]}), workers=2)


class TestCliWorkersFlag:
    def test_parser_accepts_workers(self):
        from repro.cli import build_parser

        args = build_parser().parse_args(
            ["sweep", "failover", "--axis", "replication_factor=1,2", "--workers", "4"]
        )
        assert args.workers == 4

    def test_workers_default_is_sequential(self):
        from repro.cli import build_parser

        args = build_parser().parse_args(
            ["sweep", "failover", "--axis", "replication_factor=1,2"]
        )
        assert args.workers == 1


class TestSpecPickling:
    def test_spec_round_trips_through_pickle(self):
        # The pool ships (spec, point) tuples to workers; a spec carrying
        # fault and churn plans must survive pickling.
        import pickle

        from repro.core.fault_injection import FaultPlan
        from repro.core.membership import ChurnPlan

        spec = ScenarioSpec(
            preset="elasticity",
            seed=3,
            cluster={"num_nodes": 4},
            faults=None,
            churn=ChurnPlan(kind="join_leave", events=4),
        )
        assert pickle.loads(pickle.dumps(spec)) == spec
        fault_spec = ScenarioSpec(
            preset="failover",
            faults=FaultPlan(kind="rolling_outage", outage_density=0.3),
        )
        assert pickle.loads(pickle.dumps(fault_spec)) == fault_spec
