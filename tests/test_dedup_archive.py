"""Tests for the directory archiver (file-level backup and restore)."""

from __future__ import annotations

import os

import pytest

from repro.core.cluster import SHHCCluster
from repro.core.config import ClusterConfig, HashNodeConfig
from repro.dedup.archive import DirectoryArchiver, Snapshot
from repro.dedup.chunking import ContentDefinedChunker, FixedSizeChunker
from repro.dedup.index import InMemoryChunkIndex
from repro.storage.object_store import CloudObjectStore


def make_archiver(catalog_path=None, chunker=None) -> DirectoryArchiver:
    return DirectoryArchiver(
        index=InMemoryChunkIndex(),
        object_store=CloudObjectStore(),
        chunker=chunker if chunker is not None else FixedSizeChunker(256),
        catalog_path=catalog_path,
    )


def write_tree(root, files):
    for path, data in files.items():
        destination = os.path.join(root, path)
        os.makedirs(os.path.dirname(destination) or str(root), exist_ok=True)
        with open(destination, "wb") as handle:
            handle.write(data)


class TestBackupRestore:
    def test_directory_roundtrip(self, tmp_path):
        source = tmp_path / "source"
        files = {
            "docs/report.txt": os.urandom(3000),
            "docs/notes.md": b"hello world" * 50,
            "bin/data.bin": os.urandom(1024),
        }
        write_tree(str(source), files)
        archiver = make_archiver()
        stats = archiver.backup_directory(str(source), "snap-1")
        assert stats.files_scanned == 3
        assert stats.bytes_scanned == sum(len(data) for data in files.values())

        target = tmp_path / "restored"
        written = archiver.restore_directory("snap-1", str(target))
        assert written == 3
        for path, data in files.items():
            with open(target / path, "rb") as handle:
                assert handle.read() == data

    def test_restore_single_file(self, tmp_path):
        files = {"a.bin": os.urandom(2000)}
        archiver = make_archiver()
        archiver.backup_files(files, "snap-1")
        assert archiver.restore_file("snap-1", "a.bin") == files["a.bin"]

    def test_second_identical_snapshot_uploads_nothing(self):
        files = {"a.bin": os.urandom(4096), "b.bin": os.urandom(4096)}
        archiver = make_archiver()
        first = archiver.backup_files(files, "day-1")
        second = archiver.backup_files(files, "day-2")
        assert first.chunks_uploaded > 0
        assert second.chunks_uploaded == 0
        assert second.dedup_savings == pytest.approx(1.0)

    def test_modified_file_uploads_only_changed_chunks(self):
        base = os.urandom(256 * 10)
        archiver = make_archiver()
        archiver.backup_files({"image.bin": base}, "v1")
        modified = base[: 256 * 9] + os.urandom(256)
        stats = archiver.backup_files({"image.bin": modified}, "v2")
        assert stats.chunks_uploaded == 1
        assert archiver.restore_file("v2", "image.bin") == modified

    def test_content_defined_chunking_survives_insertion(self):
        base = os.urandom(50_000)
        archiver = make_archiver(chunker=ContentDefinedChunker(average_size=1024))
        archiver.backup_files({"doc": base}, "v1")
        edited = base[:10_000] + b"INSERTED" + base[10_000:]
        stats = archiver.backup_files({"doc": edited}, "v2")
        # Only the chunks around the insertion point change.
        assert stats.chunks_uploaded <= 4
        assert archiver.restore_file("v2", "doc") == edited

    def test_duplicate_snapshot_id_rejected(self):
        archiver = make_archiver()
        archiver.backup_files({"a": b"data"}, "snap")
        with pytest.raises(ValueError):
            archiver.backup_files({"a": b"data"}, "snap")

    def test_backup_missing_directory_raises(self, tmp_path):
        archiver = make_archiver()
        with pytest.raises(NotADirectoryError):
            archiver.backup_directory(str(tmp_path / "missing"), "snap")

    def test_restore_unknown_snapshot_or_file(self):
        archiver = make_archiver()
        archiver.backup_files({"a": b"data"}, "snap")
        with pytest.raises(KeyError):
            archiver.restore_file("ghost", "a")
        with pytest.raises(KeyError):
            archiver.restore_file("snap", "missing")

    def test_works_with_shhc_cluster_as_index(self, tmp_path):
        cluster = SHHCCluster(
            ClusterConfig(
                num_nodes=4,
                node=HashNodeConfig(ram_cache_entries=1024, bloom_expected_items=50_000),
            )
        )
        archiver = DirectoryArchiver(cluster, CloudObjectStore(), FixedSizeChunker(512))
        data = os.urandom(512 * 32)
        archiver.backup_files({"disk.img": data}, "laptop-day1")
        archiver.backup_files({"disk.img": data}, "laptop-day2")
        assert archiver.restore_file("laptop-day2", "disk.img") == data
        assert len(cluster) == 32


class TestSnapshotsAndDiff:
    def test_diff_classifies_changes(self):
        archiver = make_archiver()
        archiver.backup_files(
            {"keep.txt": b"same", "edit.txt": b"x" * 600, "drop.txt": b"bye"}, "v1"
        )
        archiver.backup_files(
            {"keep.txt": b"same", "edit.txt": b"y" * 600, "new.txt": b"hello"}, "v2"
        )
        diff = archiver.diff("v1", "v2")
        assert diff["added"] == ["new.txt"]
        assert diff["removed"] == ["drop.txt"]
        assert diff["modified"] == ["edit.txt"]
        assert diff["unchanged"] == ["keep.txt"]

    def test_list_snapshots(self):
        archiver = make_archiver()
        archiver.backup_files({"a": b"1"}, "b-snap")
        archiver.backup_files({"a": b"1"}, "a-snap")
        assert archiver.list_snapshots() == ["a-snap", "b-snap"]

    def test_snapshot_json_roundtrip(self):
        archiver = make_archiver()
        archiver.backup_files({"dir/a.bin": os.urandom(1000)}, "snap")
        snapshot = archiver.snapshots["snap"]
        restored = Snapshot.from_json(snapshot.to_json())
        assert restored.snapshot_id == "snap"
        assert restored.files.keys() == snapshot.files.keys()
        original_entry = snapshot.files["dir/a.bin"]
        restored_entry = restored.files["dir/a.bin"]
        assert restored_entry.fingerprints == original_entry.fingerprints

    def test_catalog_persists_across_instances(self, tmp_path):
        catalog = str(tmp_path / "catalog.json")
        store = CloudObjectStore()
        first = DirectoryArchiver(InMemoryChunkIndex(), store, FixedSizeChunker(256), catalog)
        data = os.urandom(2000)
        first.backup_files({"a.bin": data}, "snap-1")

        # A new archiver instance sharing the store can restore from the
        # persisted catalogue without re-backing anything up.
        second = DirectoryArchiver(InMemoryChunkIndex(), store, FixedSizeChunker(256), catalog)
        assert second.list_snapshots() == ["snap-1"]
        assert second.restore_file("snap-1", "a.bin") == data

    def test_catalog_records_chunker_and_warns_on_mismatch(self, tmp_path):
        import json
        import warnings

        catalog = str(tmp_path / "catalog.json")
        store = CloudObjectStore()
        first = DirectoryArchiver(
            InMemoryChunkIndex(), store, ContentDefinedChunker(average_size=1024), catalog
        )
        first.backup_files({"a.bin": os.urandom(5000)}, "snap-1")
        recorded = json.load(open(catalog))["chunking"]
        assert recorded["strategy"] == "cdc" and recorded["engine"] == "gear"

        # Matching chunker: silent.
        with warnings.catch_warnings():
            warnings.simplefilter("error")
            matching = DirectoryArchiver(
                InMemoryChunkIndex(), store, ContentDefinedChunker(average_size=1024), catalog
            )
        assert matching.catalog_chunking == recorded

        # Different boundary engine: dedup against the existing store would
        # silently break, so loading must warn.
        with pytest.warns(UserWarning, match="chunker mismatch"):
            DirectoryArchiver(
                InMemoryChunkIndex(),
                store,
                ContentDefinedChunker(average_size=1024, engine="rabin"),
                catalog,
            )

    def test_rabin_window_mismatch_warns(self, tmp_path):
        import warnings

        catalog = str(tmp_path / "catalog.json")
        store = CloudObjectStore()
        first = DirectoryArchiver(
            InMemoryChunkIndex(),
            store,
            ContentDefinedChunker(average_size=1024, engine="rabin", window_size=48),
            catalog,
        )
        first.backup_files({"a.bin": os.urandom(5000)}, "snap-1")
        with pytest.warns(UserWarning, match="chunker mismatch"):
            DirectoryArchiver(
                InMemoryChunkIndex(),
                store,
                ContentDefinedChunker(average_size=1024, engine="rabin", window_size=32),
                catalog,
            )
        # Gear ignores window_size, so differing windows must stay silent.
        gear_catalog = str(tmp_path / "gear.json")
        gear = DirectoryArchiver(
            InMemoryChunkIndex(), store,
            ContentDefinedChunker(average_size=1024, window_size=48), gear_catalog,
        )
        gear.backup_files({"a.bin": os.urandom(2000)}, "snap-1")
        with warnings.catch_warnings():
            warnings.simplefilter("error")
            DirectoryArchiver(
                InMemoryChunkIndex(), store,
                ContentDefinedChunker(average_size=1024, window_size=32), gear_catalog,
            )

    def test_catalog_without_chunking_record_loads_silently(self, tmp_path):
        import json
        import warnings

        catalog = str(tmp_path / "catalog.json")
        # Simulate a pre-pinning catalogue (no "chunking" key).
        json.dump({"snapshots": []}, open(catalog, "w"))
        with warnings.catch_warnings():
            warnings.simplefilter("error")
            archiver = make_archiver(catalog_path=catalog)
        assert archiver.catalog_chunking is None
