"""Tests for the random-stream and statistics helpers."""

from __future__ import annotations

import math

import pytest

from repro.simulation.rng import (
    RandomStreams,
    derive_seed,
    exponential,
    weighted_choice,
    zipf_weights,
)
from repro.simulation.stats import (
    Counter,
    LatencyRecorder,
    ReservoirSample,
    SummaryStats,
    TimeWeightedValue,
    histogram,
    percentile,
)


class TestRandomStreams:
    def test_same_seed_same_draws(self):
        a = RandomStreams(7).stream("workload")
        b = RandomStreams(7).stream("workload")
        assert [a.random() for _ in range(5)] == [b.random() for _ in range(5)]

    def test_different_streams_are_independent(self):
        streams = RandomStreams(7)
        first = [streams.stream("a").random() for _ in range(5)]
        second = [streams.stream("b").random() for _ in range(5)]
        assert first != second

    def test_adding_stream_does_not_disturb_existing(self):
        streams = RandomStreams(7)
        stream_a = streams.stream("a")
        first_draw = stream_a.random()
        streams.stream("new-consumer")
        reference = RandomStreams(7).stream("a")
        reference.random()
        assert stream_a.random() == reference.random()

    def test_reset_restores_initial_state(self):
        streams = RandomStreams(3)
        draws = [streams.stream("x").random() for _ in range(3)]
        streams.reset()
        assert [streams.stream("x").random() for _ in range(3)] == draws

    def test_spawn_creates_distinct_family(self):
        parent = RandomStreams(3)
        child = parent.spawn("child")
        assert child.master_seed != parent.master_seed

    def test_derive_seed_is_stable_and_distinct(self):
        assert derive_seed(1, "a") == derive_seed(1, "a")
        assert derive_seed(1, "a") != derive_seed(1, "b")
        assert derive_seed(1, "a") != derive_seed(2, "a")

    def test_exponential_mean(self):
        rng = RandomStreams(5).stream("exp")
        samples = [exponential(rng, 2.0) for _ in range(20_000)]
        assert sum(samples) / len(samples) == pytest.approx(2.0, rel=0.05)
        assert exponential(rng, 0.0) == 0.0

    def test_zipf_weights_normalised_and_decreasing(self):
        weights = zipf_weights(10, skew=1.0)
        assert sum(weights) == pytest.approx(1.0)
        assert all(weights[i] >= weights[i + 1] for i in range(9))
        assert zipf_weights(0) == []

    def test_weighted_choice_respects_weights(self):
        rng = RandomStreams(9).stream("choice")
        picks = [weighted_choice(rng, ["a", "b"], [0.9, 0.1]) for _ in range(5000)]
        assert picks.count("a") > picks.count("b") * 4

    def test_weighted_choice_validation(self):
        rng = RandomStreams(9).stream("choice")
        with pytest.raises(ValueError):
            weighted_choice(rng, ["a"], [1.0, 2.0])
        with pytest.raises(ValueError):
            weighted_choice(rng, [], [])


class TestSummaryStats:
    def test_mean_min_max_total(self):
        stats = SummaryStats()
        stats.extend([1.0, 2.0, 3.0, 4.0])
        assert stats.count == 4
        assert stats.mean == pytest.approx(2.5)
        assert stats.minimum == 1.0
        assert stats.maximum == 4.0
        assert stats.total == pytest.approx(10.0)

    def test_variance_matches_definition(self):
        values = [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0]
        stats = SummaryStats()
        stats.extend(values)
        mean = sum(values) / len(values)
        expected = sum((v - mean) ** 2 for v in values) / (len(values) - 1)
        assert stats.variance == pytest.approx(expected)
        assert stats.stddev == pytest.approx(math.sqrt(expected))

    def test_merge_equals_combined(self):
        left, right, combined = SummaryStats(), SummaryStats(), SummaryStats()
        data_left = [1.0, 5.0, 2.0]
        data_right = [10.0, 0.5]
        left.extend(data_left)
        right.extend(data_right)
        combined.extend(data_left + data_right)
        merged = left.merge(right)
        assert merged.count == combined.count
        assert merged.mean == pytest.approx(combined.mean)
        assert merged.variance == pytest.approx(combined.variance)
        assert merged.minimum == combined.minimum
        assert merged.maximum == combined.maximum

    def test_merge_with_empty(self):
        stats = SummaryStats()
        stats.add(3.0)
        assert stats.merge(SummaryStats()).mean == 3.0
        assert SummaryStats().merge(stats).mean == 3.0

    def test_as_dict_keys(self):
        stats = SummaryStats()
        stats.add(1.0)
        assert set(stats.as_dict()) == {"count", "mean", "stddev", "min", "max", "total"}


class TestPercentilesAndReservoir:
    def test_percentile_interpolation(self):
        data = [1.0, 2.0, 3.0, 4.0]
        assert percentile(data, 0.0) == 1.0
        assert percentile(data, 1.0) == 4.0
        assert percentile(data, 0.5) == pytest.approx(2.5)

    def test_percentile_validation(self):
        with pytest.raises(ValueError):
            percentile([], 0.5)
        with pytest.raises(ValueError):
            percentile([1.0], 1.5)

    def test_reservoir_keeps_all_when_small(self):
        reservoir = ReservoirSample(capacity=100)
        for value in range(50):
            reservoir.add(float(value))
        assert sorted(reservoir.values()) == [float(v) for v in range(50)]
        assert reservoir.seen == 50

    def test_reservoir_bounded_and_representative(self):
        reservoir = ReservoirSample(capacity=500, seed=1)
        for value in range(50_000):
            reservoir.add(float(value))
        assert len(reservoir.values()) == 500
        # The median of a uniform 0..50k stream should be near 25k.
        assert reservoir.percentile(0.5) == pytest.approx(25_000, rel=0.15)

    def test_latency_recorder(self):
        recorder = LatencyRecorder()
        for value in range(1, 101):
            recorder.record(float(value))
        assert recorder.count == 100
        assert recorder.mean == pytest.approx(50.5)
        assert recorder.percentile(0.99) >= 95.0
        assert set(recorder.as_dict()) >= {"count", "mean", "p50", "p95", "p99"}


class TestTimeWeightedAndCounters:
    def test_time_weighted_average(self):
        tracker = TimeWeightedValue()
        tracker.update(0.0, 0.0)
        tracker.update(10.0, 4.0)   # value 0 for 10s
        tracker.update(20.0, 2.0)   # value 4 for 10s
        assert tracker.average(30.0) == pytest.approx((0 * 10 + 4 * 10 + 2 * 10) / 30)
        assert tracker.maximum == 4.0
        assert tracker.current == 2.0

    def test_time_weighted_rejects_time_going_backwards(self):
        tracker = TimeWeightedValue()
        tracker.update(5.0, 1.0)
        with pytest.raises(ValueError):
            tracker.update(4.0, 2.0)

    def test_counter_increment_and_merge(self):
        a = Counter()
        a.increment("x")
        a.increment("x", 4)
        b = Counter()
        b.increment("x")
        b.increment("y", 2)
        merged = a.merge(b)
        assert merged.get("x") == 6
        assert merged.get("y") == 2
        assert a.get("missing") == 0

    def test_histogram_bins_cover_all_values(self):
        values = [float(v) for v in range(100)]
        bins = histogram(values, bins=10)
        assert len(bins) == 10
        assert sum(count for _low, _high, count in bins) == 100

    def test_histogram_degenerate_cases(self):
        assert histogram([], bins=5) == []
        assert histogram([3.0, 3.0], bins=5) == [(3.0, 3.0, 2)]
        with pytest.raises(ValueError):
            histogram([1.0, 2.0], bins=0)


class TestBatchedRecording:
    """record_many / add_many must be state-identical to per-sample calls."""

    def test_record_many_matches_record_loop(self):
        import random

        rng = random.Random(3)
        values = [rng.random() for _ in range(500)]
        reference = LatencyRecorder("ref", reservoir_size=64)
        batched = LatencyRecorder("fast", reservoir_size=64)
        for value in values:
            reference.record(value)
        batched.record_many(values[:200])
        batched.record_many(values[200:])
        assert batched.summary.as_dict() == reference.summary.as_dict()
        # Identical reservoir contents even across the capacity boundary:
        # both made the same seeded RNG draws in the same order.
        assert batched.reservoir.values() == reference.reservoir.values()
        assert batched.reservoir.seen == reference.reservoir.seen

    def test_add_many_below_capacity_skips_no_draws(self):
        reference = ReservoirSample(capacity=100, seed=7)
        batched = ReservoirSample(capacity=100, seed=7)
        for value in range(50):
            reference.add(float(value))
        batched.add_many([float(value) for value in range(50)])
        assert batched.values() == reference.values()
        # Subsequent over-capacity adds must agree too (same RNG state).
        for value in range(200):
            reference.add(float(value))
        batched.add_many([float(value) for value in range(200)])
        assert batched.values() == reference.values()

    def test_record_many_accepts_generators(self):
        recorder = LatencyRecorder("gen")
        recorder.record_many(float(i) for i in range(10))
        assert recorder.count == 10
        assert recorder.summary.maximum == 9.0
        # The one-shot iterable must reach the reservoir too, not just the
        # Welford summary (a generator is exhausted after one pass).
        assert sorted(recorder.reservoir.values()) == [float(i) for i in range(10)]

    def test_empty_batch_is_a_noop(self):
        recorder = LatencyRecorder("empty", reservoir_size=8)
        recorder.record_many([])
        assert recorder.count == 0
        assert recorder.reservoir.values() == []
        assert recorder.reservoir.seen == 0
        # On a non-empty recorder too: summary, reservoir and RNG state all
        # untouched (later draws must match a recorder that never saw the
        # empty batch).
        reference = LatencyRecorder("ref", reservoir_size=8)
        values = [float(v) for v in range(20)]
        recorder.record_many(values)
        recorder.record_many([])
        reference.record_many(values)
        recorder.record_many(values)
        reference.record_many(values)
        assert recorder.summary.as_dict() == reference.summary.as_dict()
        assert recorder.reservoir.values() == reference.reservoir.values()
        sample = ReservoirSample(capacity=4, seed=11)
        sample.add_many([1.0, 2.0, 3.0, 4.0, 5.0])  # beyond capacity: RNG engaged
        snapshot, seen = sample.values(), sample.seen
        sample.add_many([])
        assert sample.values() == snapshot and sample.seen == seen

    def test_single_element_batch_matches_single_add(self):
        reference = LatencyRecorder("ref", reservoir_size=4)
        batched = LatencyRecorder("fast", reservoir_size=4)
        # Walk well past the reservoir capacity one element at a time so the
        # single-element batch path is exercised both below and above it.
        for value in range(12):
            reference.record(float(value))
            batched.record_many([float(value)])
        assert batched.summary.as_dict() == reference.summary.as_dict()
        assert batched.reservoir.values() == reference.reservoir.values()
        assert batched.reservoir.seen == reference.reservoir.seen

    def test_overflow_batch_ordering_matches_add_loop(self):
        # A batch that crosses the capacity boundary mid-batch must fall back
        # to per-sample offers in input order: the first elements still fill
        # the free slots without RNG draws, the rest draw exactly the same
        # replacement indices as a hand-written add() loop.
        reference = ReservoirSample(capacity=10, seed=23)
        batched = ReservoirSample(capacity=10, seed=23)
        head = [float(v) for v in range(7)]
        overflow = [float(v) for v in range(100, 130)]
        for value in head:
            reference.add(value)
        batched.add_many(head)
        for value in overflow:
            reference.add(value)
        batched.add_many(overflow)  # 7 + 30 > 10: boundary crossed mid-batch
        assert batched.values() == reference.values()
        assert batched.seen == reference.seen == 37
