"""Tests for dynamic membership (scaling) and the replication controller."""

from __future__ import annotations

import pytest

from repro.core.cluster import SHHCCluster
from repro.core.config import ClusterConfig, HashNodeConfig
from repro.core.membership import MembershipManager
from repro.core.replication import ReplicationController
from repro.dedup.fingerprint import synthetic_fingerprint
from repro.storage.wal import WriteAheadLog


def loaded_cluster(num_nodes=4, replication=1, virtual_nodes=0, entries=800) -> SHHCCluster:
    config = ClusterConfig(
        num_nodes=num_nodes,
        node=HashNodeConfig(ram_cache_entries=512, bloom_expected_items=50_000, ssd_buckets=1 << 10),
        replication_factor=replication,
        virtual_nodes=virtual_nodes,
    )
    cluster = SHHCCluster(config)
    cluster.lookup_batch([synthetic_fingerprint(i) for i in range(entries)])
    return cluster


class TestMembershipManager:
    def test_add_node_preserves_every_fingerprint(self):
        cluster = loaded_cluster()
        manager = MembershipManager(cluster)
        report = manager.add_node("hashnode-4")
        assert report.action == "add"
        assert len(cluster.nodes) == 5
        assert len(cluster) == 800
        for index in range(800):
            assert cluster.lookup(synthetic_fingerprint(index)).is_duplicate is True

    def test_add_node_places_entries_at_their_new_owner(self):
        cluster = loaded_cluster()
        MembershipManager(cluster).add_node("hashnode-4")
        for index in range(0, 800, 7):
            fingerprint = synthetic_fingerprint(index)
            assert fingerprint in cluster.nodes[cluster.owner_of(fingerprint)]

    def test_add_existing_node_rejected(self):
        cluster = loaded_cluster()
        with pytest.raises(ValueError):
            MembershipManager(cluster).add_node("hashnode-0")

    def test_remove_node_preserves_every_fingerprint(self):
        cluster = loaded_cluster()
        manager = MembershipManager(cluster)
        report = manager.remove_node("hashnode-1")
        assert report.action == "remove"
        assert len(cluster.nodes) == 3
        assert "hashnode-1" not in cluster.nodes
        assert len(cluster) == 800
        for index in range(800):
            assert cluster.lookup(synthetic_fingerprint(index)).is_duplicate is True

    def test_remove_unknown_or_last_node_rejected(self):
        cluster = loaded_cluster(num_nodes=1)
        manager = MembershipManager(cluster)
        with pytest.raises(KeyError):
            manager.remove_node("ghost")
        with pytest.raises(ValueError):
            manager.remove_node("hashnode-0")

    def test_consistent_hashing_moves_fewer_entries_than_range(self):
        range_cluster = loaded_cluster(virtual_nodes=0)
        ring_cluster = loaded_cluster(virtual_nodes=128)
        range_report = MembershipManager(range_cluster).add_node("hashnode-4")
        ring_report = MembershipManager(ring_cluster).add_node("hashnode-4")
        assert ring_report.moved_fraction < range_report.moved_fraction

    def test_consistent_hashing_join_moves_roughly_one_fifth(self):
        cluster = loaded_cluster(virtual_nodes=256)
        report = MembershipManager(cluster).add_node("hashnode-4")
        assert 0.05 < report.moved_fraction < 0.4

    def test_migration_reports_accumulate(self):
        cluster = loaded_cluster()
        manager = MembershipManager(cluster)
        manager.add_node("hashnode-4")
        manager.remove_node("hashnode-4")
        assert len(manager.reports) == 2
        assert manager.total_moved() == sum(r.entries_moved for r in manager.reports)

    def test_wal_records_membership_changes(self):
        cluster = loaded_cluster()
        wal = WriteAheadLog()
        manager = MembershipManager(cluster, wal=wal)
        manager.add_node("hashnode-4")
        kinds = [record.kind for record in wal.replay()]
        assert kinds == ["add_node", "add_node_done"]


class TestReplicaAwareMembership:
    """Join/leave with replication_factor >= 2 must rebuild replica sets."""

    def assert_placement_matches_map(self, cluster):
        controller = ReplicationController(cluster)
        placement = controller.placement()
        for digest, holders in placement.items():
            value = next(
                (cluster.nodes[h].store.get(digest) for h in holders), 0
            )
            fingerprint = MembershipManager._as_fingerprint(digest, value)
            desired = controller.desired_nodes(fingerprint)
            assert set(desired) <= holders, "replica-set member missing a copy"
            assert holders <= set(desired), "stale copy outside the replica set"

    def test_add_node_rebuilds_replica_sets(self):
        cluster = loaded_cluster(num_nodes=4, replication=2, virtual_nodes=64, entries=500)
        report = MembershipManager(cluster).add_node("hashnode-4")
        assert report.replication_factor == 2
        assert report.replica_copies > 0
        assert report.primary_moves > 0
        assert report.entries_moved == report.primary_moves + report.replica_copies
        assert len(cluster) == 500
        self.assert_placement_matches_map(cluster)
        assert ReplicationController(cluster).consistency_report().is_healthy

    def test_remove_node_rebuilds_replica_sets(self):
        cluster = loaded_cluster(num_nodes=4, replication=2, virtual_nodes=64, entries=500)
        report = MembershipManager(cluster).remove_node("hashnode-1")
        assert report.replica_copies > 0
        assert len(cluster) == 500
        assert "hashnode-1" not in cluster.nodes
        self.assert_placement_matches_map(cluster)
        for index in range(500):
            assert cluster.lookup(synthetic_fingerprint(index)).is_duplicate is True

    def test_migration_drops_stale_copies(self):
        cluster = loaded_cluster(num_nodes=4, replication=2, virtual_nodes=64, entries=500)
        manager = MembershipManager(cluster)
        report = manager.add_node("hashnode-4")
        assert report.replica_drops > 0
        # Capacity view: exactly k copies of each fingerprint remain.
        assert cluster.total_stored == 2 * 500

    def test_unreplicated_join_has_no_replica_traffic(self):
        cluster = loaded_cluster(num_nodes=4, replication=1, virtual_nodes=64, entries=500)
        report = MembershipManager(cluster).add_node("hashnode-4")
        assert report.replica_copies == 0
        assert report.entries_moved == report.primary_moves

    def test_removing_a_down_node_relies_on_survivors(self):
        cluster = loaded_cluster(num_nodes=4, replication=2, virtual_nodes=64, entries=400)
        manager = MembershipManager(cluster)
        cluster.mark_down("hashnode-2")
        report = manager.remove_node("hashnode-2")
        assert report.unreachable == 0  # k=2: every digest had a live copy
        assert len(cluster) == 400
        assert ReplicationController(cluster).consistency_report().is_healthy

    def test_removing_a_down_node_without_replication_loses_entries(self):
        cluster = loaded_cluster(num_nodes=4, replication=1, virtual_nodes=64, entries=400)
        manager = MembershipManager(cluster)
        on_victim = len(cluster.nodes["hashnode-2"])
        assert on_victim > 0
        cluster.mark_down("hashnode-2")
        report = manager.remove_node("hashnode-2")
        assert len(cluster) == 400 - on_victim
        # Every lost digest is accounted for: at k=1 the dead node held the
        # only copy of each of its entries.
        assert report.unreachable == on_victim

    def test_total_replica_copies_accumulates(self):
        cluster = loaded_cluster(num_nodes=4, replication=2, virtual_nodes=64, entries=300)
        manager = MembershipManager(cluster)
        manager.add_node("hashnode-4")
        manager.remove_node("hashnode-0")
        assert manager.total_replica_copies() == sum(
            r.replica_copies for r in manager.reports
        )


class TestWalRecovery:
    """A mid-migration crash must replay cleanly from the WAL."""

    def test_recover_completes_an_interrupted_add(self):
        cluster = loaded_cluster(num_nodes=4, replication=2, virtual_nodes=64, entries=400)
        wal = WriteAheadLog()
        # Simulate a crash right after the intent record: the partition map
        # and node object never changed, no data moved.
        wal.append("add_node", node="hashnode-4")
        manager = MembershipManager(cluster, wal=wal)
        reports = manager.recover()
        assert len(reports) == 1
        assert reports[0].recovered is True
        assert "hashnode-4" in cluster.nodes
        assert len(cluster) == 400
        assert ReplicationController(cluster).consistency_report().is_healthy
        kinds = [record.kind for record in wal.replay()]
        assert kinds == ["add_node", "add_node_done"]

    def test_recover_completes_a_partially_applied_add(self):
        cluster = loaded_cluster(num_nodes=4, replication=2, virtual_nodes=64, entries=400)
        wal = WriteAheadLog()
        wal.append("add_node", node="hashnode-4")
        manager = MembershipManager(cluster, wal=wal)
        # Crash happened after the node was installed but before migration.
        manager._install_node("hashnode-4")
        reports = manager.recover()
        assert reports[0].entries_moved > 0
        assert len(cluster) == 400
        assert ReplicationController(cluster).consistency_report().is_healthy

    def test_recover_completes_an_interrupted_remove(self):
        cluster = loaded_cluster(num_nodes=4, replication=2, virtual_nodes=64, entries=400)
        wal = WriteAheadLog()
        wal.append("remove_node", node="hashnode-1")
        manager = MembershipManager(cluster, wal=wal)
        # Crash after the node was torn down; its local entries are gone
        # (k=2 survivors hold every digest).
        manager._uninstall_node("hashnode-1")
        reports = manager.recover()
        assert len(reports) == 1
        assert "hashnode-1" not in cluster.nodes
        assert len(cluster) == 400
        assert ReplicationController(cluster).consistency_report().is_healthy
        for index in range(0, 400, 7):
            assert cluster.lookup(synthetic_fingerprint(index)).is_duplicate is True

    def test_recover_completes_a_remove_interrupted_mid_teardown(self):
        # Crash landed between the partitioner update and the node-dict
        # removal: the node is still in cluster.nodes but not in the map.
        cluster = loaded_cluster(num_nodes=4, replication=2, virtual_nodes=64, entries=400)
        wal = WriteAheadLog()
        wal.append("remove_node", node="hashnode-1")
        cluster.partitioner.remove_node("hashnode-1")
        manager = MembershipManager(cluster, wal=wal)
        reports = manager.recover()
        assert len(reports) == 1 and reports[0].recovered is True
        assert "hashnode-1" not in cluster.nodes
        assert "hashnode-1" not in cluster.partitioner.nodes()
        assert len(cluster) == 400
        assert ReplicationController(cluster).consistency_report().is_healthy

    def test_recover_is_a_noop_on_a_clean_log(self):
        cluster = loaded_cluster(num_nodes=4, replication=2, entries=200)
        wal = WriteAheadLog()
        manager = MembershipManager(cluster, wal=wal)
        manager.add_node("hashnode-4")
        before = [record.kind for record in wal.replay()]
        assert manager.recover() == []
        assert [record.kind for record in wal.replay()] == before

    def test_recovery_migration_is_idempotent(self):
        cluster = loaded_cluster(num_nodes=4, replication=2, virtual_nodes=64, entries=300)
        wal = WriteAheadLog()
        manager = MembershipManager(cluster, wal=wal)
        manager.add_node("hashnode-4")
        # Replaying the same intent against the fully migrated state moves
        # nothing further.
        wal.append("add_node", node="hashnode-4")
        reports = manager.recover()
        assert reports[0].entries_moved == 0
        assert len(cluster) == 300


class TestReplicationController:
    def test_healthy_cluster_reports_full_replication(self):
        cluster = loaded_cluster(num_nodes=3, replication=2, entries=300)
        report = ReplicationController(cluster).consistency_report()
        assert report.is_healthy
        assert report.total_fingerprints == 300
        assert report.copies_histogram.get(2, 0) == 300

    def test_node_failure_repair_restores_replication(self):
        cluster = loaded_cluster(num_nodes=3, replication=2, entries=300)
        controller = ReplicationController(cluster)
        created = controller.handle_failure("hashnode-0")
        assert created > 0
        report = controller.consistency_report()
        assert report.is_healthy
        assert report.lost == 0
        # All fingerprints still answerable.
        for index in range(300):
            assert cluster.lookup(synthetic_fingerprint(index)).is_duplicate is True

    def test_no_data_loss_with_replication_after_single_failure(self):
        cluster = loaded_cluster(num_nodes=4, replication=2, entries=400)
        controller = ReplicationController(cluster)
        cluster.mark_down("hashnode-2")
        report = controller.consistency_report()
        assert report.lost == 0

    def test_without_replication_failure_loses_copies(self):
        cluster = loaded_cluster(num_nodes=4, replication=1, entries=400)
        controller = ReplicationController(cluster)
        cluster.mark_down("hashnode-2")
        report = controller.consistency_report()
        # The failed node's entries have no surviving copy.
        assert report.total_fingerprints < 400

    def test_repair_is_idempotent(self):
        cluster = loaded_cluster(num_nodes=3, replication=2, entries=200)
        controller = ReplicationController(cluster)
        assert controller.repair() == 0

    def test_recovery_after_rejoin_keeps_health(self):
        cluster = loaded_cluster(num_nodes=3, replication=2, entries=200)
        controller = ReplicationController(cluster)
        controller.handle_failure("hashnode-1")
        controller.handle_recovery("hashnode-1")
        assert controller.consistency_report().is_healthy
