"""Serving stack tests: wire protocol, gateway lifecycle, fault injection.

The end-to-end tests boot a real :class:`~repro.serving.gateway.ServiceGateway`
(worker processes, TCP sockets, the lot) on an ephemeral localhost port, so
they are slower than the in-process suite -- node counts and fingerprint
volumes are kept deliberately small.  The invariants they pin are the ones
the ISSUE acceptance criteria name: a taken port fails loudly, overload
sheds instead of queueing without bound, a killed worker respawns with zero
lost acknowledged fingerprints, and graceful shutdown drains in-flight
batches and leaves warm-startable state behind.
"""

from __future__ import annotations

import asyncio
import json
import threading
import socket

import pytest

from repro.serving.gateway import ServeConfig, ServiceGateway, ServingError
from repro.serving.loadgen import LoadtestConfig, run_loadtest_async
from repro.serving.wire import (
    MAX_FRAME_BYTES,
    JsonCodec,
    WireError,
    encode_frame,
    get_codec,
    pack_verdicts,
    recv_frame,
    send_frame,
    unpack_verdicts,
)
from repro.simulation.stats import LatencyRecorder, ReservoirSample


# --------------------------------------------------------------------- wire
def test_frame_roundtrip_over_socket_pair():
    message = {"t": "batch", "id": 7, "d": "ab" * 40, "s": 8192}
    left, right = socket.socketpair()
    try:
        send_frame(left, message, JsonCodec)
        assert recv_frame(right, JsonCodec) == message
        left.close()
        assert recv_frame(right, JsonCodec) is None  # clean EOF
    finally:
        right.close()


def test_encode_frame_rejects_oversized():
    huge = {"d": "a" * (MAX_FRAME_BYTES + 1)}
    with pytest.raises(WireError):
        encode_frame(huge, JsonCodec)


def test_codec_resolution():
    assert get_codec("json") is JsonCodec
    assert get_codec("auto") is not None
    with pytest.raises(WireError):
        get_codec("carrier-pigeon")


def test_json_codec_rejects_non_dict():
    with pytest.raises(WireError):
        JsonCodec.decode(b"[1, 2, 3]")
    with pytest.raises(WireError):
        JsonCodec.decode(b"not json at all")


def test_verdict_mask_roundtrip():
    flags = [True, False, False, True, True, False, True, False, True]
    mask = pack_verdicts(flags)
    duplicates, unpacked = unpack_verdicts(mask, len(flags))
    assert unpacked == flags
    assert duplicates == sum(flags)
    assert unpack_verdicts(pack_verdicts([]), 0) == (0, [])
    # An all-false mask encodes as "0" and must round-trip to all-false.
    assert unpack_verdicts(pack_verdicts([False] * 4), 4) == (0, [False] * 4)


# ------------------------------------------------------------ gateway lifecycle
def _serve_config(tmp_path=None, **overrides) -> ServeConfig:
    defaults = dict(
        port=0,
        num_nodes=2,
        node_config={"bloom_expected_items": 50_000},
        data_dir=str(tmp_path) if tmp_path is not None else None,
        snapshot_every=1_000,
    )
    defaults.update(overrides)
    return ServeConfig(**defaults)


def _load_config(port: int, **overrides) -> LoadtestConfig:
    defaults = dict(
        port=port,
        clients=4,
        pipeline=2,
        batch_size=128,
        fingerprints=4_000,
        seed=5,
    )
    defaults.update(overrides)
    return LoadtestConfig(**defaults)


def test_port_in_use_raises_serving_error():
    taken = socket.socket()
    taken.bind(("127.0.0.1", 0))
    taken.listen(1)
    port = taken.getsockname()[1]

    async def _go():
        gateway = ServiceGateway(_serve_config(num_nodes=1, port=port))
        with pytest.raises(ServingError, match="cannot listen"):
            await gateway.start()

    try:
        asyncio.run(_go())
    finally:
        taken.close()


def test_end_to_end_loadtest_zero_lost_acks():
    async def _go():
        gateway = ServiceGateway(_serve_config())
        await gateway.start()
        try:
            report = await run_loadtest_async(_load_config(gateway.port))
            stats = gateway.stats()
        finally:
            await gateway.close()
        return report, stats

    report, stats = asyncio.run(_go())
    assert report.acked_fingerprints == report.offered_fingerprints == 4_000
    assert report.failed_batches == 0
    assert report.audited and report.lost_acknowledged == 0
    # Duplicate structure survives the wire: new + duplicates == acked, and
    # the gateway's ledger agrees with the clients'.
    assert report.new_fingerprints + report.duplicate_fingerprints == 4_000
    assert 0 < report.new_fingerprints < 4_000
    assert stats["new_fingerprints"] >= report.new_fingerprints
    assert report.latency_us.get("p99", 0.0) > 0.0


def test_worker_kill_respawns_with_zero_lost_acks(tmp_path):
    async def _go():
        gateway = ServiceGateway(_serve_config(tmp_path, max_queue=8, max_inflight=64))
        await gateway.start()
        try:
            report = await run_loadtest_async(_load_config(
                gateway.port,
                fingerprints=12_000,
                kill_node="node1",
                kill_after_fraction=0.25,
            ))
        finally:
            await gateway.close()
        return report

    report = asyncio.run(_go())
    assert report.kills_sent == 1
    assert report.worker_restarts >= 1
    # The contract under fire: a fingerprint the service acknowledged is
    # still a duplicate on re-lookup after its shard was SIGKILLed.
    assert report.audited and report.lost_acknowledged == 0
    assert report.acked_fingerprints == report.offered_fingerprints


def test_shed_on_overload_replies_overloaded():
    async def _go():
        gateway = ServiceGateway(_serve_config(max_queue=1, max_inflight=2))
        await gateway.start()
        try:
            report = await run_loadtest_async(_load_config(
                gateway.port,
                clients=8,
                pipeline=8,
                fingerprints=8_000,
                burst_batches=32,
                audit=False,
            ))
            stats = gateway.stats()
        finally:
            await gateway.close()
        return report, stats

    report, stats = asyncio.run(_go())
    # Admission control must actually reject under this much concurrency
    # against queues this small -- and the gateway's ledger must agree.
    assert report.sheds > 0
    assert stats["shed_batches"] > 0
    assert 0.0 < stats["shed_rate"] <= 1.0
    # Every offered batch is accounted for: acked or (after bounded
    # retries / the no-retry burst) failed -- none vanish into the queue.
    assert report.acked_batches + report.failed_batches == report.offered_batches


def test_graceful_drain_completes_inflight_and_leaves_warm_state(tmp_path):
    # Spread the digests across the whole keyspace (routing shards on the
    # top 64 bits) so *both* workers persist entries and warm-start.
    digests = "".join(f"{i << 154:040x}" for i in range(64))

    async def _go():
        gateway = ServiceGateway(_serve_config(tmp_path))
        await gateway.start()
        reader, writer = await asyncio.open_connection("127.0.0.1", gateway.port)
        writer.write(encode_frame({"t": "batch", "id": 1, "d": digests, "s": 4096}))
        await writer.drain()
        # Wait for admission (closing the door *before* the frame is read
        # would legitimately answer SHUTTING_DOWN), then drain: the admitted
        # batch must be answered before the door shuts.
        while not (gateway.inflight or gateway.acked_batches):
            await asyncio.sleep(0.001)
        close_task = asyncio.ensure_future(gateway.close())
        from repro.serving.wire import read_frame

        reply = await asyncio.wait_for(read_frame(reader), timeout=10.0)
        await close_task
        writer.close()
        assert reply is not None and reply["ok"], reply
        assert reply["n"] == 64

        # The shutdown handshake snapshots every shard: a second fleet over
        # the same data_dir warm-starts and still knows the fingerprints.
        gateway2 = ServiceGateway(_serve_config(tmp_path))
        await gateway2.start()
        try:
            reader2, writer2 = await asyncio.open_connection("127.0.0.1", gateway2.port)
            writer2.write(encode_frame({"t": "batch", "id": 2, "d": digests, "s": 4096}))
            await writer2.drain()
            reply2 = await asyncio.wait_for(read_frame(reader2), timeout=10.0)
            writer2.close()
            warm = sum(worker.warm_starts for worker in gateway2.workers)
        finally:
            await gateway2.close()
        assert reply2 is not None and reply2["ok"], reply2
        duplicates, _ = unpack_verdicts(reply2["v"], reply2["n"])
        assert duplicates == 64  # every previously acked fp is a duplicate
        assert warm == 2

    asyncio.run(_go())


def test_stats_http_endpoint():
    async def _go():
        gateway = ServiceGateway(_serve_config(num_nodes=1))
        await gateway.start()
        try:
            async def _get(path: str):
                reader, writer = await asyncio.open_connection("127.0.0.1", gateway.port)
                writer.write(f"GET {path} HTTP/1.1\r\nHost: x\r\n\r\n".encode())
                await writer.drain()
                raw = await asyncio.wait_for(reader.read(-1), timeout=10.0)
                writer.close()
                head, _, body = raw.partition(b"\r\n\r\n")
                return head.split(b"\r\n")[0], body

            status, body = await _get("/stats")
            assert b"200" in status
            stats = json.loads(body)
            assert stats["nodes"] == 1
            assert stats["workers"][0]["up"] is True
            not_found, _ = await _get("/nope")
            assert b"404" in not_found
        finally:
            await gateway.close()

    asyncio.run(_go())


def test_unknown_frame_type_and_kill_of_unknown_worker():
    async def _go():
        gateway = ServiceGateway(_serve_config(num_nodes=1))
        await gateway.start()
        try:
            from repro.serving.wire import read_frame

            reader, writer = await asyncio.open_connection("127.0.0.1", gateway.port)
            writer.write(encode_frame({"t": "warp-drive", "id": 9}))
            writer.write(encode_frame({"t": "kill_worker", "id": 10, "node": "node99"}))
            await writer.drain()
            first = await asyncio.wait_for(read_frame(reader), timeout=10.0)
            second = await asyncio.wait_for(read_frame(reader), timeout=10.0)
            writer.close()
        finally:
            await gateway.close()
        assert first["id"] == 9 and not first["ok"] and "unknown" in first["err"]
        assert second["id"] == 10 and not second["ok"] and "node99" in second["err"]

    asyncio.run(_go())


# -------------------------------------------------------- concurrent recording
def test_latency_recorder_threaded_stress():
    """The gateway records from many tasks; hammer the recorder from real
    threads (the stronger guarantee) and check nothing is lost or torn."""
    recorder = LatencyRecorder("stress")
    threads = 8
    per_thread = 5_000
    barrier = threading.Barrier(threads)

    def _hammer(worker: int) -> None:
        barrier.wait()
        for i in range(per_thread):
            recorder.record((worker * per_thread + i) * 1e-6)

    pool = [threading.Thread(target=_hammer, args=(w,)) for w in range(threads)]
    for thread in pool:
        thread.start()
    for thread in pool:
        thread.join()

    stats = recorder.as_dict()
    assert stats["count"] == threads * per_thread
    expected_mean = (threads * per_thread - 1) / 2 * 1e-6
    assert stats["mean"] == pytest.approx(expected_mean, rel=1e-9)
    assert 0.0 <= stats["p50"] <= stats["p99"] <= stats["max"]


def test_reservoir_sample_threaded_stress():
    sample = ReservoirSample(capacity=512, seed=3)
    threads = 8
    per_thread = 2_000
    barrier = threading.Barrier(threads)

    def _hammer(worker: int) -> None:
        barrier.wait()
        for i in range(per_thread):
            sample.add(float(worker * per_thread + i))
        sample.add_many([float(worker)] * 10)

    pool = [threading.Thread(target=_hammer, args=(w,)) for w in range(threads)]
    for thread in pool:
        thread.start()
    for thread in pool:
        thread.join()

    values = sample.values()
    assert len(values) == 512  # full reservoir, no torn bookkeeping
    universe = threads * (per_thread + 10)
    assert sample.seen == universe
    assert all(0.0 <= value < threads * per_thread for value in values)
    assert 0.0 <= sample.percentile(0.5) <= max(values)


def test_stats_objects_survive_pickling():
    """Process-pool sweeps pickle results carrying recorders; the lock must
    be dropped and recreated, not poisoned."""
    import pickle

    recorder = LatencyRecorder("pickle-me")
    for i in range(100):
        recorder.record(i * 1e-6)
    clone = pickle.loads(pickle.dumps(recorder))
    assert clone.as_dict()["count"] == 100
    clone.record(1.0)  # the recreated lock actually works
    assert clone.as_dict()["count"] == 101
