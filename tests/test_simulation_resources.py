"""Tests for Resource, Store and Container primitives."""

from __future__ import annotations

import pytest

from repro.simulation.engine import SimulationError, Simulator
from repro.simulation.process import run_process
from repro.simulation.resources import Container, Resource, Store


class TestResource:
    def test_capacity_validation(self, sim):
        with pytest.raises(ValueError):
            Resource(sim, capacity=0)

    def test_grant_is_immediate_when_free(self, sim):
        resource = Resource(sim, capacity=1)
        grant = resource.request()
        assert grant.triggered
        assert resource.in_use == 1

    def test_second_request_queues_until_release(self, sim):
        resource = Resource(sim, capacity=1)
        first = resource.request()
        second = resource.request()
        assert first.triggered and not second.triggered
        assert resource.queue_length == 1
        resource.release()
        assert second.triggered
        assert resource.queue_length == 0

    def test_release_without_request_raises(self, sim):
        resource = Resource(sim, capacity=1)
        with pytest.raises(SimulationError):
            resource.release()

    def test_serialisation_of_processes(self, sim):
        resource = Resource(sim, capacity=1)
        log = []

        def worker(name, hold):
            grant = resource.request()
            yield grant
            log.append((name, "start", sim.now))
            yield sim.timeout(hold)
            resource.release()
            log.append((name, "end", sim.now))

        run_process(sim, worker("a", 2.0))
        run_process(sim, worker("b", 1.0))
        sim.run()
        # b's grant fires at the instant a releases (t=2.0); entries at the
        # same simulated time may interleave, so compare per-worker views.
        assert [entry for entry in log if entry[0] == "a"] == [
            ("a", "start", 0.0),
            ("a", "end", 2.0),
        ]
        assert [entry for entry in log if entry[0] == "b"] == [
            ("b", "start", 2.0),
            ("b", "end", 3.0),
        ]

    def test_capacity_two_runs_in_parallel(self, sim):
        resource = Resource(sim, capacity=2)
        ends = []

        def worker(hold):
            yield resource.request()
            yield sim.timeout(hold)
            resource.release()
            ends.append(sim.now)

        for _ in range(2):
            run_process(sim, worker(3.0))
        sim.run()
        assert ends == [3.0, 3.0]

    def test_priority_queue_order(self, sim):
        resource = Resource(sim, capacity=1)
        resource.request()  # occupy
        order = []
        low = resource.request(priority=10)
        high = resource.request(priority=-10)
        low.add_callback(lambda _e: order.append("low"))
        high.add_callback(lambda _e: order.append("high"))
        resource.release()
        resource.release()
        sim.run()
        assert order == ["high", "low"]

    def test_utilization_tracks_busy_time(self, sim):
        resource = Resource(sim, capacity=1)

        def worker():
            yield resource.request()
            yield sim.timeout(4.0)
            resource.release()
            yield sim.timeout(6.0)

        run_process(sim, worker())
        sim.run()
        assert resource.utilization() == pytest.approx(0.4)

    def test_mean_wait_accounts_queueing(self, sim):
        resource = Resource(sim, capacity=1)

        def worker(hold):
            yield resource.request()
            yield sim.timeout(hold)
            resource.release()

        run_process(sim, worker(2.0))
        run_process(sim, worker(2.0))
        sim.run()
        # First waits 0, second waits 2 -> mean 1.
        assert resource.mean_wait() == pytest.approx(1.0)


class TestStore:
    def test_put_then_get(self, sim):
        store = Store(sim)
        store.put("item")
        got = store.get()
        assert got.triggered and got.value == "item"

    def test_get_blocks_until_put(self, sim):
        store = Store(sim)
        got = store.get()
        assert not got.triggered
        store.put("later")
        assert got.value == "later"

    def test_fifo_order(self, sim):
        store = Store(sim)
        for index in range(5):
            store.put(index)
        values = [store.get().value for _ in range(5)]
        assert values == list(range(5))

    def test_capacity_blocks_put(self, sim):
        store = Store(sim, capacity=2)
        assert store.put(1).triggered
        assert store.put(2).triggered
        blocked = store.put(3)
        assert not blocked.triggered
        assert store.is_full
        store.get()
        assert blocked.triggered
        assert store.items() == [2, 3]

    def test_try_get_and_peek(self, sim):
        store = Store(sim)
        assert store.try_get() is None
        assert store.peek() is None
        store.put("x")
        assert store.peek() == "x"
        assert store.try_get() == "x"
        assert len(store) == 0

    def test_counters(self, sim):
        store = Store(sim)
        store.put(1)
        store.put(2)
        store.get()
        assert store.total_put == 2
        assert store.total_get == 1

    def test_producer_consumer_processes(self, sim):
        store = Store(sim, capacity=2)
        consumed = []

        def producer():
            for index in range(5):
                yield store.put(index)
                yield sim.timeout(0.1)

        def consumer():
            for _ in range(5):
                item = yield store.get()
                consumed.append(item)
                yield sim.timeout(0.5)

        run_process(sim, producer())
        run_process(sim, consumer())
        sim.run()
        assert consumed == list(range(5))

    def test_invalid_capacity(self, sim):
        with pytest.raises(ValueError):
            Store(sim, capacity=0)


class TestContainer:
    def test_initial_level(self, sim):
        container = Container(sim, capacity=10.0, initial=4.0)
        assert container.level == 4.0

    def test_get_blocks_until_enough(self, sim):
        container = Container(sim, capacity=10.0)
        request = container.get(3.0)
        assert not request.triggered
        container.put(2.0)
        assert not request.triggered
        container.put(2.0)
        assert request.triggered
        assert container.level == pytest.approx(1.0)

    def test_put_blocks_when_over_capacity(self, sim):
        container = Container(sim, capacity=5.0, initial=4.0)
        blocked = container.put(3.0)
        assert not blocked.triggered
        container.get(3.0)
        assert blocked.triggered
        assert container.level == pytest.approx(4.0)

    def test_validation(self, sim):
        with pytest.raises(ValueError):
            Container(sim, capacity=0.0)
        with pytest.raises(ValueError):
            Container(sim, capacity=1.0, initial=2.0)
        container = Container(sim, capacity=1.0)
        with pytest.raises(ValueError):
            container.put(-1.0)
        with pytest.raises(ValueError):
            container.get(-1.0)
