"""Tests for the plain-text report rendering helpers."""

from __future__ import annotations

from repro.analysis.reporting import format_fraction_bar, format_series, format_table


class TestFormatTable:
    def test_contains_headers_and_rows(self):
        text = format_table(["name", "count"], [["alpha", 10], ["beta", 2000]])
        assert "name" in text and "count" in text
        assert "alpha" in text and "beta" in text
        assert "2,000" in text  # thousands separator

    def test_title_and_rule(self):
        text = format_table(["a"], [[1]], title="My Table")
        lines = text.splitlines()
        assert lines[0] == "My Table"
        assert set(lines[1]) == {"="}

    def test_columns_are_aligned(self):
        text = format_table(["col"], [["short"], ["a-much-longer-value"]])
        data_lines = text.splitlines()[2:]
        assert len(set(len(line) for line in data_lines)) == 1

    def test_float_formatting(self):
        text = format_table(["v"], [[0.12345], [12.3456], [12345.6]])
        assert "0.1234" in text or "0.1235" in text
        assert "12.35" in text
        assert "12,346" in text

    def test_empty_rows(self):
        text = format_table(["a", "b"], [])
        assert "a" in text and "b" in text


class TestFormatSeries:
    def test_series_rendered_as_columns(self):
        text = format_series("x", [1, 2, 3], {"linear": [1, 2, 3], "square": [1, 4, 9]})
        assert "linear" in text and "square" in text
        assert "9" in text

    def test_short_series_padded(self):
        text = format_series("x", [1, 2], {"partial": [10]})
        assert "10" in text


class TestFractionBar:
    def test_bars_scale_with_fraction(self):
        text = format_fraction_bar({"a": 0.75, "b": 0.25}, width=20)
        lines = text.splitlines()
        assert lines[0].count("#") == 15
        assert lines[1].count("#") == 5
        assert "75.0%" in lines[0]

    def test_title_and_empty(self):
        assert "headline" in format_fraction_bar({"a": 1.0}, title="headline")
        assert "(empty)" in format_fraction_bar({})
