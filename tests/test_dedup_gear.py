"""Tests for the gear chunking engine and the streaming chunkers.

The gear engine is new fast-path code, so the suite pins down three things:
that every covering it produces is valid (contiguous, reconstructing,
min/max-bounded), that it agrees structurally with the Rabin reference
oracle, and that the incremental ``chunk_stream`` overrides are *exactly*
equivalent to whole-input chunking for any block partition of the input.
"""

from __future__ import annotations

import random

import pytest

from repro.dedup.chunking import Chunk, ContentDefinedChunker, FixedSizeChunker
from repro.dedup.gear import GEAR_TABLE, GearChunker, gear_cut, gear_threshold


def _random_data(seed: int, size: int) -> bytes:
    return random.Random(seed).randbytes(size)


def _assert_valid_covering(chunker: ContentDefinedChunker, data: bytes) -> list:
    chunks = list(chunker.chunk(data))
    assert b"".join(chunk.data for chunk in chunks) == data
    offset = 0
    for chunk in chunks:
        assert chunk.offset == offset
        offset += chunk.size
    for chunk in chunks[:-1]:
        assert chunker.min_size <= chunk.size <= chunker.max_size
    if chunks:
        assert chunks[-1].size <= chunker.max_size
    return chunks


class TestGearTable:
    def test_table_shape_and_determinism(self):
        assert len(GEAR_TABLE) == 256
        assert len(set(GEAR_TABLE)) == 256  # no collisions among entries
        assert all(0 <= value < 2 ** 64 for value in GEAR_TABLE)

    def test_threshold_matches_average_size(self):
        assert gear_threshold(8192) == 1 << (64 - 13)
        assert gear_threshold(64) == 1 << (64 - 6)

    def test_gear_cut_respects_bounds(self):
        data = _random_data(3, 50_000)
        view = memoryview(data)
        threshold = gear_threshold(1024)
        cut = gear_cut(view, 0, len(data), 256, 4096, threshold)
        assert 256 < cut <= 4096

    def test_gear_cut_short_input_returns_end(self):
        data = b"x" * 100
        assert gear_cut(memoryview(data), 0, 100, 256, 4096, gear_threshold(1024)) == 100


class TestGearEngineEquivalence:
    """Old Rabin oracle vs. new gear engine on the same fixed-seed inputs."""

    @pytest.mark.parametrize("seed", [0, 7, 23])
    def test_both_engines_produce_valid_coverings(self, seed):
        data = _random_data(seed, 120_000)
        gear = ContentDefinedChunker(average_size=1024, engine="gear")
        rabin = ContentDefinedChunker(average_size=1024, engine="rabin")
        gear_chunks = _assert_valid_covering(gear, data)
        rabin_chunks = _assert_valid_covering(rabin, data)
        # Matching reassembly from both coverings.
        assert b"".join(c.data for c in gear_chunks) == b"".join(c.data for c in rabin_chunks)

    def test_mean_chunk_sizes_in_same_ballpark(self):
        data = _random_data(11, 200_000)
        for engine in ("gear", "rabin"):
            sizes = ContentDefinedChunker(average_size=1024, engine=engine).chunk_sizes(data)
            mean = sum(sizes) / len(sizes)
            assert 512 <= mean <= 2048, (engine, mean)

    def test_gear_is_default_engine(self):
        chunker = ContentDefinedChunker(average_size=1024)
        assert chunker.engine == "gear"

    def test_unknown_engine_rejected(self):
        with pytest.raises(ValueError):
            ContentDefinedChunker(average_size=1024, engine="fnv")

    def test_gear_chunker_class_matches_engine_parameter(self):
        data = _random_data(5, 60_000)
        via_class = [c.data for c in GearChunker(average_size=1024).chunk(data)]
        via_param = [c.data for c in ContentDefinedChunker(1024, engine="gear").chunk(data)]
        assert via_class == via_param

    def test_gear_boundaries_stable_under_prefix_insertion(self):
        data = _random_data(13, 30_000)
        chunker = ContentDefinedChunker(average_size=512, engine="gear")
        original = {chunk.data for chunk in chunker.chunk(data)}
        shifted = {chunk.data for chunk in chunker.chunk(_random_data(14, 137) + data)}
        assert len(original & shifted) >= len(original) * 0.6

    def test_gear_deterministic_across_instances(self):
        data = _random_data(21, 40_000)
        a = [c.data for c in ContentDefinedChunker(512).chunk(data)]
        b = [c.data for c in ContentDefinedChunker(512).chunk(data)]
        assert a == b


def _partitions(data: bytes, seed: int):
    """A few adversarial block partitions of ``data``."""
    rng = random.Random(seed)
    yield [data]  # single block
    yield [data[i:i + 1] for i in range(0, min(len(data), 2000))] + [data[2000:]]  # byte drip
    blocks, index = [], 0
    while index < len(data):
        size = rng.choice([1, 3, 17, 256, 4096, 65536])
        blocks.append(data[index:index + size])
        index += size
    yield blocks


class TestStreamingEquivalence:
    @pytest.mark.parametrize("engine", ["gear", "rabin"])
    def test_cdc_stream_equals_whole_input(self, engine):
        data = _random_data(31, 80_000)
        chunker = ContentDefinedChunker(average_size=512, engine=engine)
        whole = [(c.offset, c.data) for c in chunker.chunk(data)]
        for partition in _partitions(data, 32):
            streamed = [(c.offset, c.data) for c in chunker.chunk_stream(partition)]
            assert streamed == whole

    def test_fixed_stream_equals_whole_input(self):
        data = _random_data(33, 50_000)
        chunker = FixedSizeChunker(512)
        whole = [(c.offset, c.data) for c in chunker.chunk(data)]
        for partition in _partitions(data, 34):
            streamed = [(c.offset, c.data) for c in chunker.chunk_stream(partition)]
            assert streamed == whole

    def test_stream_of_empty_blocks_yields_nothing(self):
        chunker = ContentDefinedChunker(average_size=512)
        assert list(chunker.chunk_stream([b"", b"", b""])) == []
        assert list(FixedSizeChunker(64).chunk_stream([])) == []

    def test_stream_emits_incrementally_without_buffering_everything(self):
        """First chunk must be produced long before the stream is exhausted."""
        chunker = ContentDefinedChunker(average_size=512)
        consumed = 0
        total_blocks = 200

        def blocks():
            nonlocal consumed
            rng = random.Random(41)
            for _ in range(total_blocks):
                consumed += 1
                yield rng.randbytes(1024)

        stream = chunker.chunk_stream(blocks())
        first = next(stream)
        assert isinstance(first, Chunk)
        # max_size is 2048 bytes, so at most a handful of 1 KiB blocks may
        # have been pulled before the first chunk was certain.
        assert consumed <= 8
        rest = list(stream)
        assert consumed == total_blocks
        assert first.size + sum(c.size for c in rest) == total_blocks * 1024
