"""Tests for the SHHC cluster."""

from __future__ import annotations

import pytest

from repro.core.cluster import SHHCCluster
from repro.core.config import ClusterConfig, HashNodeConfig
from repro.core.protocol import BatchLookupRequest
from repro.dedup.fingerprint import synthetic_fingerprint
from repro.network.topology import ClusterTopology
from repro.simulation.engine import Simulator


def make_cluster(num_nodes=4, replication=1, virtual_nodes=0, sim=None) -> SHHCCluster:
    config = ClusterConfig(
        num_nodes=num_nodes,
        node=HashNodeConfig(ram_cache_entries=512, bloom_expected_items=50_000, ssd_buckets=1 << 10),
        replication_factor=replication,
        virtual_nodes=virtual_nodes,
    )
    return SHHCCluster(config, sim=sim)


class TestClusterLookup:
    def test_first_lookup_unique_second_duplicate(self):
        cluster = make_cluster()
        fingerprint = synthetic_fingerprint(1)
        assert cluster.lookup(fingerprint).is_duplicate is False
        assert cluster.lookup(fingerprint).is_duplicate is True
        assert len(cluster) == 1
        assert cluster.duplicate_ratio() == pytest.approx(0.5)

    def test_lookup_routes_to_partition_owner(self):
        cluster = make_cluster()
        fingerprint = synthetic_fingerprint(99)
        result = cluster.lookup(fingerprint)
        assert result.served_by == cluster.owner_of(fingerprint)
        assert fingerprint in cluster.nodes[result.served_by]

    def test_batch_lookup_matches_single_lookups(self):
        fingerprints = [synthetic_fingerprint(i % 50) for i in range(200)]
        batch_cluster = make_cluster()
        single_cluster = make_cluster()
        batch_results = batch_cluster.lookup_batch(fingerprints)
        single_results = [single_cluster.lookup(fp) for fp in fingerprints]
        assert [r.is_duplicate for r in batch_results] == [r.is_duplicate for r in single_results]
        assert len(batch_cluster) == len(single_cluster)

    def test_batch_lookup_preserves_order(self):
        cluster = make_cluster()
        fingerprints = [synthetic_fingerprint(i) for i in range(100)]
        results = cluster.lookup_batch(fingerprints)
        assert [r.fingerprint for r in results] == fingerprints

    def test_contains_checks_replicas_without_inserting(self):
        cluster = make_cluster()
        fingerprint = synthetic_fingerprint(7)
        assert fingerprint not in cluster
        cluster.lookup(fingerprint)
        assert fingerprint in cluster

    def test_distribution_across_nodes_is_balanced(self):
        cluster = make_cluster()
        cluster.lookup_batch([synthetic_fingerprint(i) for i in range(4000)])
        report = cluster.storage_distribution()
        assert report.total == 4000
        assert report.max_deviation_from_even() < 0.05

    def test_empty_batch(self):
        assert make_cluster().lookup_batch([]) == []

    def test_metrics_match_lookup_counts(self):
        cluster = make_cluster()
        cluster.lookup_batch([synthetic_fingerprint(i % 100) for i in range(500)])
        metrics = cluster.metrics()
        assert metrics.total_lookups == 500
        assert metrics.total_entries == 100
        assert metrics.total_new_entries == 100

    def test_mean_lookup_latency_positive(self):
        cluster = make_cluster()
        cluster.lookup_batch([synthetic_fingerprint(i) for i in range(50)])
        assert cluster.mean_lookup_latency() > 0.0


class TestReplication:
    def test_new_fingerprints_written_to_replica_set(self):
        cluster = make_cluster(num_nodes=3, replication=2)
        fingerprint = synthetic_fingerprint(11)
        cluster.lookup(fingerprint)
        replicas = cluster.replica_set(fingerprint)
        assert len(replicas) == 2
        for node_name in replicas:
            assert fingerprint in cluster.nodes[node_name]

    def test_batch_lookups_also_replicate(self):
        cluster = make_cluster(num_nodes=3, replication=2)
        fingerprints = [synthetic_fingerprint(i) for i in range(60)]
        cluster.lookup_batch(fingerprints)
        for fingerprint in fingerprints:
            holders = [name for name, node in cluster.nodes.items() if fingerprint in node]
            assert len(holders) >= 2

    def test_failover_to_replica_when_primary_down(self):
        cluster = make_cluster(num_nodes=3, replication=2)
        fingerprint = synthetic_fingerprint(21)
        cluster.lookup(fingerprint)
        primary = cluster.owner_of(fingerprint)
        cluster.mark_down(primary)
        result = cluster.lookup(fingerprint)
        assert result.is_duplicate is True
        assert result.served_by != primary
        cluster.mark_up(primary)

    def test_mark_down_unknown_node_raises(self):
        cluster = make_cluster()
        with pytest.raises(KeyError):
            cluster.mark_down("ghost")

    def test_all_replicas_down_raises(self):
        cluster = make_cluster(num_nodes=2, replication=1)
        fingerprint = synthetic_fingerprint(5)
        cluster.mark_down(cluster.owner_of(fingerprint))
        # replication factor 1: the only replica is the primary.
        with pytest.raises(RuntimeError):
            cluster.lookup(fingerprint)


class TestVirtualNodePartitioning:
    def test_consistent_hash_cluster_balances(self):
        cluster = make_cluster(num_nodes=4, virtual_nodes=128)
        cluster.lookup_batch([synthetic_fingerprint(i) for i in range(4000)])
        report = cluster.storage_distribution()
        assert report.max_over_mean < 1.5


class TestSimulatedService:
    def test_registered_service_answers_batches(self, sim):
        cluster = make_cluster(num_nodes=2, sim=sim)
        topology = ClusterTopology(num_clients=1, num_web_servers=1, num_hash_nodes=2)
        network = topology.build_network(sim)
        cluster.register_services(network.rpc)

        fingerprints = [synthetic_fingerprint(i) for i in range(32)]
        owner = cluster.owner_of(fingerprints[0])
        owned = [fp for fp in fingerprints if cluster.owner_of(fp) == owner]
        request = BatchLookupRequest(owned)
        responses = []
        network.rpc.call("client-0", owner, request, request.payload_bytes).add_callback(
            lambda event: responses.append((sim.now, event.value))
        )
        sim.run()
        finish_time, reply = responses[0]
        assert finish_time > 0
        assert len(reply.replies) == len(owned)
        assert all(not r.is_duplicate for r in reply.replies)
        assert len(cluster) == len(owned)
