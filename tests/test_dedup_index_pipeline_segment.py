"""Tests for the chunk index, dedup pipeline and segmenting helpers."""

from __future__ import annotations

import os

import pytest

from repro.dedup.fingerprint import synthetic_fingerprint
from repro.dedup.index import InMemoryChunkIndex
from repro.dedup.pipeline import DedupPipeline
from repro.dedup.chunking import FixedSizeChunker
from repro.dedup.segment import interleave_streams, locality_score, segment_stream
from repro.storage.object_store import CloudObjectStore


class TestInMemoryChunkIndex:
    def test_first_lookup_is_unique_then_duplicate(self):
        index = InMemoryChunkIndex()
        fingerprint = synthetic_fingerprint(1)
        first = index.lookup(fingerprint)
        second = index.lookup(fingerprint)
        assert first.is_duplicate is False
        assert second.is_duplicate is True
        assert len(index) == 1

    def test_contains_is_readonly(self):
        index = InMemoryChunkIndex()
        fingerprint = synthetic_fingerprint(2)
        assert fingerprint not in index
        assert len(index) == 0

    def test_batch_lookup_preserves_order(self):
        index = InMemoryChunkIndex()
        fingerprints = [synthetic_fingerprint(i % 3) for i in range(9)]
        results = index.lookup_batch(fingerprints)
        assert [r.fingerprint for r in results] == fingerprints
        assert [r.is_duplicate for r in results[:3]] == [False, False, False]
        assert all(r.is_duplicate for r in results[3:])

    def test_duplicate_ratio(self):
        index = InMemoryChunkIndex()
        for i in range(10):
            index.lookup(synthetic_fingerprint(i % 5))
        assert index.duplicate_ratio() == pytest.approx(0.5)

    def test_locations_are_distinct_per_chunk(self):
        index = InMemoryChunkIndex()
        first = index.lookup(synthetic_fingerprint(1, 100))
        second = index.lookup(synthetic_fingerprint(2, 100))
        assert first.location != second.location


class TestDedupPipeline:
    def _pipeline(self, chunk_size=64):
        return DedupPipeline(
            InMemoryChunkIndex(),
            CloudObjectStore(),
            FixedSizeChunker(chunk_size),
        )

    def test_backup_and_restore_roundtrip(self):
        pipeline = self._pipeline()
        data = os.urandom(5000)
        pipeline.backup("doc", data)
        assert pipeline.restore("doc") == data

    def test_identical_second_backup_stores_nothing_new(self):
        pipeline = self._pipeline()
        data = os.urandom(4096)
        pipeline.backup("first", data)
        physical_after_first = pipeline.stats.physical_bytes
        pipeline.backup("second", data)
        assert pipeline.stats.physical_bytes == physical_after_first
        assert pipeline.restore("second") == data
        assert pipeline.stats.dedup_ratio == pytest.approx(2.0)

    def test_partial_overlap_uploads_only_new_chunks(self):
        pipeline = self._pipeline(chunk_size=64)
        base = os.urandom(64 * 10)
        modified = base[: 64 * 5] + os.urandom(64 * 5)
        pipeline.backup("v1", base)
        unique_before = pipeline.stats.chunks_unique
        pipeline.backup("v2", modified)
        assert pipeline.stats.chunks_unique == unique_before + 5
        assert pipeline.restore("v2") == modified

    def test_space_savings(self):
        pipeline = self._pipeline()
        data = os.urandom(2048)
        pipeline.backup("a", data)
        pipeline.backup("b", data)
        assert pipeline.space_savings() == pytest.approx(0.5)

    def test_restore_unknown_name_raises(self):
        with pytest.raises(KeyError):
            self._pipeline().restore("ghost")

    def test_restore_without_object_store_raises(self):
        pipeline = DedupPipeline(InMemoryChunkIndex())
        pipeline.backup("x", b"data")
        with pytest.raises(RuntimeError):
            pipeline.restore("x")

    def test_manifest_accounting(self):
        pipeline = self._pipeline(chunk_size=100)
        manifest = pipeline.backup("doc", b"z" * 1050)
        assert manifest.chunk_count == 11
        assert manifest.logical_bytes == 1050

    def test_backup_stream(self):
        pipeline = self._pipeline()
        blocks = [os.urandom(500) for _ in range(4)]
        pipeline.backup_stream("streamed", blocks)
        assert pipeline.restore("streamed") == b"".join(blocks)

    def test_reference_counts_protect_shared_chunks(self):
        pipeline = self._pipeline()
        data = os.urandom(1024)
        pipeline.backup("a", data)
        pipeline.backup("b", data)
        store = pipeline.object_store
        digest = pipeline.manifests["a"].fingerprints[0].digest
        assert store.reference_count(digest) == 2


class TestSegmenting:
    def test_segment_stream_sizes(self):
        fingerprints = [synthetic_fingerprint(i) for i in range(10)]
        segments = list(segment_stream(fingerprints, segment_size=4))
        assert [len(segment) for segment in segments] == [4, 4, 2]
        assert [segment.sequence_number for segment in segments] == [0, 1, 2]
        assert segments[0].fingerprints == fingerprints[:4]

    def test_segment_stream_validation(self):
        with pytest.raises(ValueError):
            list(segment_stream([], segment_size=0))

    def test_interleave_round_robin(self):
        a = [synthetic_fingerprint(i) for i in range(4)]
        b = [synthetic_fingerprint(100 + i) for i in range(2)]
        merged = interleave_streams([a, b], granularity=1)
        assert merged[0] == a[0] and merged[1] == b[0]
        assert len(merged) == 6
        assert set(merged) == set(a) | set(b)

    def test_interleave_granularity_preserves_runs(self):
        a = [synthetic_fingerprint(i) for i in range(6)]
        b = [synthetic_fingerprint(100 + i) for i in range(6)]
        merged = interleave_streams([a, b], granularity=3)
        assert merged[:3] == a[:3]
        assert merged[3:6] == b[:3]

    def test_interleave_validation(self):
        with pytest.raises(ValueError):
            interleave_streams([[synthetic_fingerprint(1)]], granularity=0)

    def test_locality_score_tight_duplicates(self):
        fingerprints = []
        for i in range(100):
            fingerprints.append(synthetic_fingerprint(i))
            fingerprints.append(synthetic_fingerprint(i))  # immediate repeat
        assert locality_score(fingerprints, window=4) == pytest.approx(1.0)

    def test_locality_score_distant_duplicates(self):
        first_pass = [synthetic_fingerprint(i) for i in range(500)]
        fingerprints = first_pass + first_pass  # repeats 500 apart
        assert locality_score(fingerprints, window=10) == 0.0

    def test_locality_score_no_duplicates(self):
        fingerprints = [synthetic_fingerprint(i) for i in range(50)]
        assert locality_score(fingerprints) == 0.0

    def test_locality_score_validation(self):
        with pytest.raises(ValueError):
            locality_score([], window=0)
