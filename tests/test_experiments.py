"""Integration tests for the experiment runners (tiny-scale versions).

Each test runs the same code path as the corresponding benchmark but at a
fraction of the size, and asserts the qualitative findings the paper reports
(the "shape" of every figure/table) rather than absolute numbers.
"""

from __future__ import annotations

import pytest

from repro.analysis.experiments import (
    run_batch_tradeoff,
    run_figure1,
    run_figure5,
    run_figure6,
    run_generational_backup,
    run_scaling_ablation,
    run_table1,
    run_tier_ablation,
)
from repro.workloads.generations import GenerationConfig
from repro.workloads.profiles import HOME_DIR, MAIL_SERVER


class TestFigure1:
    @pytest.fixture(scope="class")
    def result(self):
        return run_figure1(node_counts=(1, 2, 4), rates=(20_000, 100_000), requests=2_000)

    def test_every_configuration_measured(self, result):
        assert len(result.points) == 6
        assert all(point.execution_time > 0 for point in result.points)

    def test_execution_time_decreases_with_cluster_size(self, result):
        # At the saturating rate (100k req/s) more nodes must finish sooner.
        times = {point.nodes: point.execution_time for point in result.points if point.offered_rate == 100_000}
        assert times[1] > times[2] > times[4]

    def test_low_rate_is_injection_limited(self, result):
        # At 20k req/s even a single node keeps up, so execution time is
        # roughly requests/rate for every cluster size.
        times = [point.execution_time for point in result.points if point.offered_rate == 20_000]
        nominal = 2_000 / 20_000
        assert all(t == pytest.approx(nominal, rel=0.6) for t in times)

    def test_single_node_saturates(self, result):
        saturated = next(p for p in result.points if p.nodes == 1 and p.offered_rate == 100_000)
        assert saturated.achieved_rate < 100_000 * 0.6

    def test_render_mentions_every_cluster_size(self, result):
        text = result.render()
        for nodes in (1, 2, 4):
            assert f"{nodes} nodes" in text

    def test_validation(self):
        with pytest.raises(ValueError):
            run_figure1(requests=0)


class TestFigure5:
    @pytest.fixture(scope="class")
    def result(self):
        return run_figure5(node_counts=(1, 4), batch_sizes=(1, 128), scale=0.0002)

    def test_batching_gives_order_of_magnitude(self, result):
        assert result.throughput(4, 128) > result.throughput(4, 1) * 8

    def test_throughput_scales_with_nodes_for_batched_requests(self, result):
        assert result.throughput(4, 128) > result.throughput(1, 128) * 1.5

    def test_all_fingerprints_processed(self, result):
        counts = {point.fingerprints for point in result.points}
        assert len(counts) == 1  # every configuration replayed the same trace

    def test_render(self, result):
        text = result.render()
        assert "Figure 5" in text and "chunk/s" in text

    def test_validation(self):
        with pytest.raises(ValueError):
            run_figure5(scale=0.0)


class TestFigure6:
    @pytest.fixture(scope="class")
    def result(self):
        return run_figure6(num_nodes=4, scale=0.002)

    def test_four_nodes_hold_roughly_a_quarter_each(self, result):
        fractions = result.fractions()
        assert len(fractions) == 4
        for share in fractions.values():
            assert share == pytest.approx(0.25, abs=0.03)

    def test_balance_statistics(self, result):
        assert result.max_deviation_from_even() < 0.03
        assert result.storage_report.coefficient_of_variation < 0.1

    def test_lookup_load_also_balanced(self, result):
        assert result.lookup_report.max_over_mean < 1.2

    def test_render(self, result):
        text = result.render()
        assert "Figure 6" in text and "%" in text


class TestTable1:
    @pytest.fixture(scope="class")
    def result(self):
        return run_table1(scale=0.003)

    def test_all_four_workloads_present(self, result):
        assert {row.workload for row in result.rows} == {
            "web-server",
            "home-dir",
            "mail-server",
            "time-machine",
        }

    def test_redundancy_within_two_points(self, result):
        for row in result.rows:
            assert row.redundancy_error < 0.02

    def test_duplicate_distance_within_tolerance(self, result):
        for row in result.rows:
            assert row.distance_relative_error < 0.3

    def test_render(self, result):
        assert "Table I" in result.render()

    def test_validation(self):
        with pytest.raises(ValueError):
            run_table1(scale=0.0)


class TestAblations:
    def test_tier_ablation_ordering(self):
        result = run_tier_ablation(profile=MAIL_SERVER, scale=0.0005)
        disk = result.row("disk-index").mean_latency
        ddfs = result.row("ddfs").mean_latency
        hybrid = result.row("shhc-hybrid").mean_latency
        ram = result.row("ram-only").mean_latency
        # The paper's motivation: hybrid RAM+SSD beats disk-based designs.
        assert hybrid < ddfs < disk
        assert ram <= hybrid
        assert "Ablation A" in result.render()

    def test_tier_ablation_same_verdicts_for_all_designs(self):
        result = run_tier_ablation(profile=MAIL_SERVER, scale=0.0005)
        duplicates = {row.duplicates for row in result.rows}
        assert len(duplicates) == 1

    def test_batch_tradeoff_throughput_rises_latency_rises(self):
        result = run_batch_tradeoff(batch_sizes=(1, 128), scale=0.0002)
        small, large = result.points[0], result.points[-1]
        assert large.throughput > small.throughput * 5
        assert large.mean_request_latency > small.mean_request_latency
        assert large.mean_per_chunk_latency < small.mean_per_chunk_latency
        assert "Ablation B" in result.render()

    def test_scaling_ablation_consistent_hashing_moves_less(self):
        result = run_scaling_ablation(profile=HOME_DIR, scale=0.004)
        assert result.moved_fraction_consistent < result.moved_fraction_range
        assert result.replication_entry_overhead == pytest.approx(2.0, rel=0.05)
        assert result.replication_latency_overhead >= 1.0
        assert "Ablation C" in result.render()

    def test_generational_backup_redundancy_and_dedup_ratio(self):
        config = GenerationConfig(
            initial_chunks=2_000, generations=5, modify_fraction=0.05, growth_fraction=0.01
        )
        result = run_generational_backup(config=config, num_nodes=4)
        assert len(result.rows) == 5
        assert result.rows[0].redundancy == 0.0
        assert all(row.redundancy > 0.85 for row in result.rows[1:])
        assert result.final_dedup_ratio() > 3.0
        assert "Ablation D" in result.render()

    def test_generational_backup_small_cache_shifts_hits_to_ssd(self):
        config = GenerationConfig(
            initial_chunks=2_000, generations=3, modify_fraction=0.02, growth_fraction=0.0
        )
        big_cache = run_generational_backup(config=config, num_nodes=2, ram_cache_entries=4_000)
        tiny_cache = run_generational_backup(config=config, num_nodes=2, ram_cache_entries=64)
        assert big_cache.rows[1].ram_hit_ratio > tiny_cache.rows[1].ram_hit_ratio
        # Correctness is unchanged: the same chunks are recognised as duplicates.
        assert big_cache.rows[1].duplicates == tiny_cache.rows[1].duplicates
