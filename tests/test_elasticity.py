"""Tests for the elasticity experiment, its preset, and churn-plan specs."""

from __future__ import annotations

import pytest

from repro.analysis.experiments.elasticity import run_elasticity
from repro.core.membership import ChurnPlan
from repro.scenarios import (
    ScenarioSpec,
    SpecError,
    SweepGrid,
    UnknownSpecKeyError,
    run_scenario,
    run_sweep,
    spec_for,
)

SMALL = dict(scale=0.0004, batch_size=128)


class TestChurnPlan:
    def test_round_trips_through_dict(self):
        plan = ChurnPlan.join_leave(6, start=2.0)
        assert ChurnPlan.from_dict(plan.to_dict()) == plan

    def test_rejects_unknown_keys_and_bad_values(self):
        with pytest.raises(ValueError):
            ChurnPlan.from_dict({"kind": "join_leave", "bogus": 1})
        with pytest.raises(ValueError):
            ChurnPlan(kind="oscillate")
        with pytest.raises(ValueError):
            ChurnPlan(events=-1)

    def test_none_plan_produces_no_events(self):
        assert ChurnPlan.none().schedule(100.0) == []
        assert not ChurnPlan.none().has_churn


class TestElasticityRunner:
    def test_churn_free_run_moves_nothing(self):
        result = run_elasticity(churn_plan=ChurnPlan.none(), **SMALL)
        assert result.joins == 0 and result.leaves == 0
        assert result.entries_moved == 0
        assert result.accuracy == 1.0

    def test_replicated_churn_is_lossless_with_replica_traffic(self):
        result = run_elasticity(
            replication_factor=2, churn_plan=ChurnPlan.join_leave(4), **SMALL
        )
        assert result.accuracy == 1.0
        assert result.dedup_errors == 0
        assert result.replica_copies > 0
        assert result.under_replicated == 0 and result.lost == 0
        assert result.distinct * 2 == result.total_stored

    def test_unreplicated_churn_is_lossless_without_replica_traffic(self):
        result = run_elasticity(
            replication_factor=1, churn_plan=ChurnPlan.join_leave(2), **SMALL
        )
        assert result.accuracy == 1.0
        assert result.replica_copies == 0
        assert result.primary_moves > 0

    def test_grow_and_shrink_change_the_cluster_size(self):
        grown = run_elasticity(churn_plan=ChurnPlan.grow(2), **SMALL)
        assert grown.final_nodes == 6 and grown.joins == 2
        shrunk = run_elasticity(churn_plan=ChurnPlan.shrink(2), **SMALL)
        assert shrunk.final_nodes == 2 and shrunk.leaves == 2

    def test_shrink_never_drops_below_two_nodes(self):
        result = run_elasticity(churn_plan=ChurnPlan.shrink(5), **SMALL)
        assert result.final_nodes == 2
        assert result.skipped_events == 3

    def test_render_reports_the_headline_numbers(self):
        result = run_elasticity(churn_plan=ChurnPlan.join_leave(2), **SMALL)
        rendered = result.render()
        assert "dedup accuracy" in rendered
        assert "replica copies" in rendered
        assert "churn: " in rendered

    def test_too_short_run_fails_before_working(self):
        with pytest.raises(ValueError, match="too short"):
            run_elasticity(scale=0.00001, batch_size=4096, churn_plan=ChurnPlan.grow(1))


class TestElasticityPreset:
    def test_spec_churn_keys_route_into_the_plan(self):
        spec = spec_for("elasticity", churn_events=6, churn_kind="grow", churn_start=2.0)
        assert spec.churn == ChurnPlan(kind="grow", events=6, start=2.0)
        assert spec.flat()["churn_events"] == 6

    def test_spec_round_trips_with_churn(self):
        spec = spec_for("elasticity", churn_events=4, replication_factor=3)
        clone = ScenarioSpec.from_json(spec.to_json())
        assert clone == spec

    def test_churn_keys_rejected_by_other_presets(self):
        with pytest.raises(UnknownSpecKeyError):
            spec_for("failover", churn_events=2)
        with pytest.raises(SpecError):
            run_scenario(ScenarioSpec(preset="table1", churn=ChurnPlan.grow(1)))

    def test_preset_runs_and_emits_uniform_metrics(self):
        result = run_scenario(
            "elasticity", scale=0.0004, batch_size=128, churn_events=2,
            replication_factor=2,
        )
        metrics = result.metrics
        assert metrics["dedup_accuracy"] == 1.0
        assert metrics["replica_copies"] > 0
        assert metrics["joins"] + metrics["leaves"] == 2
        assert metrics["distinct_fingerprints"] <= metrics["total_stored"]
        assert result.to_json()  # serializable

    def test_sweep_grid_matches_acceptance_criteria(self):
        sweep = run_sweep(
            spec_for("elasticity", scale=0.0004, batch_size=128),
            SweepGrid({"replication_factor": [1, 2], "churn_events": [2]}),
            strict=True,
        )
        assert len(sweep.runs) == 2
        by_factor = {run.point["replication_factor"]: run.metrics for run in sweep.runs}
        assert by_factor[1]["dedup_accuracy"] == 1.0
        assert by_factor[1]["replica_copies"] == 0
        assert by_factor[2]["dedup_accuracy"] == 1.0
        assert by_factor[2]["replica_copies"] > 0


class TestElasticityDeterminism:
    """PR 3's determinism guarantee extends to the new surface."""

    def test_same_spec_twice_is_byte_identical(self):
        spec = spec_for(
            "elasticity", scale=0.0004, batch_size=128, churn_events=4,
            replication_factor=2, seed=3,
        )
        first = run_scenario(spec)
        second = run_scenario(spec)
        assert first.to_json() == second.to_json()
        assert first.render() == second.render()

    def test_seed_changes_the_workload(self):
        base = run_scenario("elasticity", churn_events=2, seed=0, **SMALL)
        reseeded = run_scenario("elasticity", churn_events=2, seed=9, **SMALL)
        assert base.metrics != reseeded.metrics

    def test_sweep_is_byte_identical_across_runs(self):
        spec = spec_for("elasticity", scale=0.0004, batch_size=128)
        grid = SweepGrid({"replication_factor": [1, 2], "churn_events": [2]})
        first = run_sweep(spec, grid, strict=True)
        second = run_sweep(spec, grid, strict=True)
        assert first.to_json() == second.to_json()
