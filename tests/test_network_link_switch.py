"""Tests for messages, links and the switch fabric."""

from __future__ import annotations

import pytest

from repro.network.link import DEFAULT_LINK_LATENCY, GIGABIT_BANDWIDTH, NetworkLink
from repro.network.message import MESSAGE_HEADER_BYTES, Message
from repro.network.switch import NetworkSwitch
from repro.simulation.engine import Simulator


def make_message(source="a", destination="b", payload_bytes=100):
    return Message(source=source, destination=destination, payload="p", payload_bytes=payload_bytes)


class TestMessage:
    def test_wire_bytes_include_header(self):
        message = make_message(payload_bytes=100)
        assert message.wire_bytes == 100 + MESSAGE_HEADER_BYTES

    def test_message_ids_are_unique(self):
        assert make_message().message_id != make_message().message_id

    def test_reply_reverses_direction_and_links_to_request(self):
        request = make_message(source="client", destination="server")
        response = request.reply("result", payload_bytes=10, created_at=1.5)
        assert response.source == "server"
        assert response.destination == "client"
        assert response.reply_to == request.message_id
        assert response.created_at == 1.5


class TestNetworkLink:
    def test_cost_model(self):
        link = NetworkLink(latency=1e-3, bandwidth=1e6)
        assert link.transmission_time(1000) == pytest.approx(1e-3)
        assert link.total_time(1000) == pytest.approx(2e-3)

    def test_validation(self):
        with pytest.raises(ValueError):
            NetworkLink(latency=-1.0)
        with pytest.raises(ValueError):
            NetworkLink(bandwidth=0.0)

    def test_immediate_mode_delivers_synchronously(self):
        link = NetworkLink()
        delivered = []
        event = link.send(make_message(), on_delivery=delivered.append)
        assert event.triggered
        assert len(delivered) == 1
        assert link.messages_sent == 1
        assert link.bytes_sent == delivered[0].wire_bytes

    def test_simulated_delivery_takes_total_time(self, sim):
        link = NetworkLink(sim, latency=1e-3, bandwidth=1e6)
        message = make_message(payload_bytes=1000 - MESSAGE_HEADER_BYTES)
        times = []
        link.send(message, on_delivery=lambda _m: times.append(sim.now))
        sim.run()
        assert times == [pytest.approx(2e-3)]

    def test_messages_serialise_on_the_port(self, sim):
        link = NetworkLink(sim, latency=0.0, bandwidth=1e6)
        arrivals = []
        for _ in range(3):
            message = make_message(payload_bytes=1000 - MESSAGE_HEADER_BYTES)
            link.send(message, on_delivery=lambda _m: arrivals.append(sim.now))
        sim.run()
        assert arrivals == [pytest.approx(1e-3), pytest.approx(2e-3), pytest.approx(3e-3)]

    def test_propagation_overlaps_next_transmission(self, sim):
        # With a large latency but tiny transmission time, back-to-back
        # messages arrive ~transmission_time apart, not latency apart.
        link = NetworkLink(sim, latency=10e-3, bandwidth=1e9)
        arrivals = []
        for _ in range(2):
            link.send(make_message(payload_bytes=922), on_delivery=lambda _m: arrivals.append(sim.now))
        sim.run()
        assert arrivals[1] - arrivals[0] == pytest.approx(1e-6, abs=1e-7)

    def test_stats(self):
        link = NetworkLink()
        link.send(make_message())
        stats = link.stats()
        assert stats["messages"] == 1 and stats["bytes"] > 0


class TestNetworkSwitch:
    def test_attach_and_duplicate_rejected(self, sim):
        switch = NetworkSwitch(sim)
        switch.attach("host-a")
        with pytest.raises(ValueError):
            switch.attach("host-a")
        assert switch.endpoints() == ["host-a"]
        assert switch.is_attached("host-a")

    def test_send_requires_attached_endpoints(self, sim):
        switch = NetworkSwitch(sim)
        switch.attach("a")
        with pytest.raises(KeyError):
            switch.send(make_message("a", "unknown"))
        with pytest.raises(KeyError):
            switch.send(make_message("unknown", "a"))

    def test_delivery_invokes_destination_handler(self, sim):
        switch = NetworkSwitch(sim, latency=100e-6, bandwidth=GIGABIT_BANDWIDTH)
        received = []
        switch.attach("a")
        switch.attach("b", handler=lambda m: received.append((sim.now, m.payload)))
        switch.send(make_message("a", "b"))
        sim.run()
        assert len(received) == 1
        # End-to-end takes two half-latency hops plus two serialisations.
        assert received[0][0] >= 100e-6

    def test_set_handler_requires_attachment(self, sim):
        switch = NetworkSwitch(sim)
        with pytest.raises(KeyError):
            switch.set_handler("ghost", lambda m: None)

    def test_immediate_mode_switch(self):
        switch = NetworkSwitch()
        received = []
        switch.attach("a")
        switch.attach("b", handler=received.append)
        event = switch.send(make_message("a", "b"))
        assert event.triggered
        assert len(received) == 1

    def test_stats_track_both_directions(self, sim):
        switch = NetworkSwitch(sim)
        switch.attach("a")
        switch.attach("b", handler=lambda m: None)
        switch.send(make_message("a", "b"))
        sim.run()
        stats = switch.stats()
        assert stats["a"]["sent_messages"] == 1
        assert stats["b"]["received_messages"] == 1
        assert switch.total_bytes() > 0

    def test_concurrent_destinations_do_not_serialise_each_other(self, sim):
        switch = NetworkSwitch(sim, latency=0.0, bandwidth=1e6)
        arrivals = {}
        switch.attach("src")
        for name in ("dst1", "dst2"):
            switch.attach(name, handler=lambda m, n=name: arrivals.setdefault(n, sim.now))
        switch.send(make_message("src", "dst1", payload_bytes=1000 - MESSAGE_HEADER_BYTES))
        switch.send(make_message("src", "dst2", payload_bytes=1000 - MESSAGE_HEADER_BYTES))
        sim.run()
        # Uplink serialises (1ms each) but downlinks are parallel, so the
        # second arrival is ~1ms after the first, not 2ms after.
        assert arrivals["dst2"] - arrivals["dst1"] == pytest.approx(1e-3, rel=0.01)
