"""Tests for the unified scenario API: specs, sweeps, engine, CLI."""

from __future__ import annotations

import json

import pytest

from repro.cli import main
from repro.core.fault_injection import FaultPlan
from repro.scenarios import (
    ScenarioSpec,
    SpecError,
    SweepGrid,
    UnknownSpecKeyError,
    apply_overrides,
    available_presets,
    coerce_scalar,
    get_preset,
    parse_setting,
    run_scenario,
    run_sweep,
    spec_for,
)

EXPECTED_PRESETS = {
    "figure1",
    "figure5",
    "figure6",
    "table1",
    "generational",
    "tier_ablation",
    "batch_tradeoff",
    "scaling_ablation",
    "ablations",
    "failover",
}


# ------------------------------------------------------------------------- specs
class TestScenarioSpec:
    def test_all_legacy_runners_have_presets(self):
        assert EXPECTED_PRESETS <= set(available_presets())

    def test_json_round_trip(self):
        spec = spec_for(
            "failover",
            replication_factor=3,
            num_nodes=5,
            scale=0.001,
            batch_size=128,
            ram_cache_entries=4096,
            outage_density=0.3,
            failure_rate=0.05,
            seed=9,
        )
        clone = ScenarioSpec.from_json(spec.to_json())
        assert clone == spec
        assert clone.faults == FaultPlan.rolling_grey(0.3, 0.05)
        assert clone.cluster["replication_factor"] == 3
        assert clone.node["ram_cache_entries"] == 4096
        assert clone.seed == 9

    def test_json_payload_is_plain(self):
        spec = spec_for("figure5", scale=0.001, batch_sizes=[1, 128])
        payload = json.loads(spec.to_json())
        assert payload["preset"] == "figure5"
        assert payload["workload"] == {"scale": 0.001, "batch_sizes": [1, 128]}
        assert "seed" not in payload  # unset seed means "preset default"

    def test_from_dict_rejects_unknown_fields(self):
        with pytest.raises(SpecError):
            ScenarioSpec.from_dict({"preset": "figure6", "bogus": {}})

    def test_key_aliases(self):
        spec = spec_for("failover", nodes=6, replication=3)
        assert spec.cluster == {"num_nodes": 6, "replication_factor": 3}

    def test_unknown_key_names_the_preset_and_valid_keys(self):
        with pytest.raises(UnknownSpecKeyError) as excinfo:
            spec_for("figure6", batch_size=128)
        message = str(excinfo.value)
        assert "batch_size" in message and "figure6" in message and "scale" in message

    def test_fault_keys_rejected_for_faultless_presets(self):
        with pytest.raises(UnknownSpecKeyError):
            spec_for("figure5", outage_density=0.2)

    def test_fault_kind_inference_composes(self):
        spec = spec_for("failover", outage_density=0.2)
        assert spec.faults.kind == "rolling_outage"
        spec = apply_overrides(spec, {"failure_rate": 0.1})
        assert spec.faults.kind == "rolling_grey"
        assert spec.faults.outage_density == 0.2 and spec.faults.failure_rate == 0.1

    def test_unknown_preset(self):
        with pytest.raises(SpecError):
            spec_for("figure9")


# ------------------------------------------------------------------------- grids
class TestSweepGrid:
    def test_cartesian_order_and_length(self):
        grid = SweepGrid({"a": [1, 2], "b": ["x", "y", "z"]})
        points = list(grid.points())
        assert len(points) == len(grid) == 6
        assert points[0] == {"a": 1, "b": "x"}
        assert points[-1] == {"a": 2, "b": "z"}

    def test_zip_mode(self):
        grid = SweepGrid({"a": [1, 2], "b": [10, 20]}, mode="zip")
        assert list(grid.points()) == [{"a": 1, "b": 10}, {"a": 2, "b": 20}]

    def test_zip_length_mismatch(self):
        with pytest.raises(SpecError):
            SweepGrid({"a": [1, 2], "b": [10]}, mode="zip")

    def test_empty_axis_rejected(self):
        with pytest.raises(SpecError):
            SweepGrid({"a": []})
        with pytest.raises(SpecError):
            SweepGrid({})

    def test_round_trip(self):
        grid = SweepGrid({"replication_factor": [1, 2, 3], "outage_density": [0.1, 0.3]})
        assert SweepGrid.from_dict(grid.to_dict()) == grid

    def test_parse(self):
        grid = SweepGrid.parse(["replication_factor=1,2,3", "outage_density=0.1"])
        assert grid.axes == {"replication_factor": [1, 2, 3], "outage_density": [0.1]}


# ------------------------------------------------------------------- CLI parsing
class TestSettingParsing:
    @pytest.mark.parametrize(
        "raw, expected",
        [
            ("8", 8),
            ("0.25", 0.25),
            ("true", True),
            ("False", False),
            ("mail-server", "mail-server"),
            ("1e-3", 0.001),
        ],
    )
    def test_coerce_scalar(self, raw, expected):
        assert coerce_scalar(raw) == expected

    def test_parse_setting_scalar_and_list(self):
        assert parse_setting("scale=0.001") == ("scale", 0.001)
        assert parse_setting("batch_sizes=1,128,2048") == ("batch_sizes", [1, 128, 2048])
        assert parse_setting("profiles=web-server,mail-server") == (
            "profiles",
            ["web-server", "mail-server"],
        )

    @pytest.mark.parametrize("raw", ["scale", "=3", "scale=", ""])
    def test_parse_setting_rejects_malformed(self, raw):
        with pytest.raises(SpecError):
            parse_setting(raw)


# ------------------------------------------------------------------------- engine
class TestEngine:
    def test_run_scenario_accepts_name_or_spec(self):
        by_name = run_scenario("table1", scale=0.003)
        by_spec = run_scenario(spec_for("table1", scale=0.003))
        assert by_name.metrics == by_spec.metrics

    def test_identical_specs_reproduce_identical_results(self):
        # The seed-threading regression test: one spec, two runs, equal output.
        spec = spec_for(
            "failover", scale=0.0003, outage_density=0.3, failure_rate=0.05, seed=3
        )
        first = run_scenario(spec)
        second = run_scenario(spec)
        assert first.metrics == second.metrics
        assert first.render() == second.render()

    def test_seed_changes_the_workload(self):
        base = run_scenario("table1", scale=0.003)
        reseeded = run_scenario("table1", scale=0.003, seed=7)
        assert base.metrics != reseeded.metrics

    def test_metrics_are_json_serializable(self):
        result = run_scenario("generational", initial_chunks=500, generations=3)
        json.dumps(result.to_dict())
        assert result.metrics["fingerprints"] > 0
        assert 0.0 <= result.metrics["duplicate_ratio"] <= 1.0

    def test_validate_rejects_foreign_section_keys(self):
        spec = ScenarioSpec(preset="table1", cluster={"num_nodes": 4})
        with pytest.raises(UnknownSpecKeyError):
            run_scenario(spec)

    def test_composite_ablations_renders_all_three(self):
        result = run_scenario("ablations", scale=0.0008)
        text = result.render()
        assert "Ablation A" in text and "Ablation B" in text and "Ablation C" in text
        assert set(result.metrics) == {
            "tier_ablation",
            "batch_tradeoff",
            "scaling_ablation",
            "kernel_backend",
        }


class TestRunSweep:
    @pytest.fixture(scope="class")
    def failover_sweep(self):
        # The ROADMAP sweep in miniature: replication factor x outage density,
        # plus a grey-failure axis point.
        return run_sweep(
            spec_for("failover", scale=0.0003),
            SweepGrid(
                {
                    "replication_factor": [1, 2],
                    "outage_density": [0.3],
                    "failure_rate": [0.0, 0.08],
                }
            ),
        )

    def test_every_point_ran(self, failover_sweep):
        assert len(failover_sweep.runs) == 4
        assert all(run.ok for run in failover_sweep.runs)

    def test_unreplicated_cluster_loses_verdicts(self, failover_sweep):
        by_point = {
            (run.point["replication_factor"], run.point["failure_rate"]): run.metrics
            for run in failover_sweep.runs
        }
        assert by_point[(1, 0.0)]["unserved"] > 0
        assert by_point[(1, 0.0)]["dedup_accuracy"] < 1.0
        assert by_point[(2, 0.0)]["unserved"] == 0
        assert by_point[(2, 0.0)]["dedup_accuracy"] == 1.0

    def test_grey_failure_point_recorded(self, failover_sweep):
        grey = [run for run in failover_sweep.runs if run.point["failure_rate"] > 0]
        assert grey and all(run.metrics["grey_drops"] >= 0 for run in grey)
        # Grey points upgrade the plan to rolling_grey; replicated clusters
        # must still not lose a verdict.
        replicated = next(r for r in grey if r.point["replication_factor"] == 2)
        assert replicated.metrics["dedup_accuracy"] == 1.0

    def test_json_grid_shape(self, failover_sweep):
        payload = failover_sweep.to_dict()
        json.dumps(payload)
        assert payload["preset"] == "failover"
        assert payload["grid"]["axes"]["replication_factor"] == [1, 2]
        assert all("metrics" in run or "error" in run for run in payload["runs"])

    def test_failing_point_is_recorded_not_fatal(self):
        sweep = run_sweep(
            spec_for("failover", scale=0.0003, num_nodes=2),
            SweepGrid({"replication_factor": [2, 3]}),  # 3 > num_nodes: invalid
        )
        by_rep = {run.point["replication_factor"]: run for run in sweep.runs}
        assert by_rep[2].ok
        assert not by_rep[3].ok and "replication" in by_rep[3].error

    def test_strict_mode_raises(self):
        with pytest.raises(ValueError):
            run_sweep(
                spec_for("failover", scale=0.0003, num_nodes=2),
                SweepGrid({"replication_factor": [3]}),
                strict=True,
            )

    def test_unknown_axis_fails_before_running(self):
        with pytest.raises(UnknownSpecKeyError):
            run_sweep(spec_for("failover"), SweepGrid({"warp_factor": [9]}))

    def test_render_lists_axes_and_metrics(self, failover_sweep):
        text = failover_sweep.render()
        assert "replication_factor" in text and "dedup_accuracy" in text


# ---------------------------------------------------------------------------- CLI
class TestScenarioCli:
    def test_run_with_set_and_json(self, tmp_path, capsys):
        out = tmp_path / "result.json"
        code = main(
            ["run", "figure6", "--set", "scale=0.002", "--set", "num_nodes=4",
             "--json", str(out)]
        )
        assert code == 0
        assert "Figure 6" in capsys.readouterr().out
        payload = json.loads(out.read_text())
        assert payload["spec"]["preset"] == "figure6"
        assert payload["spec"]["workload"] == {"scale": 0.002}
        assert payload["metrics"]["max_deviation_from_even"] < 0.05

    def test_run_bad_key_exits_2(self, capsys):
        code = main(["run", "figure6", "--set", "warp=9"])
        assert code == 2
        assert "warp" in capsys.readouterr().err

    def test_run_missing_preset_exits_2(self, capsys):
        assert main(["run"]) == 2
        assert "preset" in capsys.readouterr().err

    def test_run_spec_file(self, tmp_path, capsys):
        spec_path = tmp_path / "spec.json"
        spec_path.write_text(spec_for("table1", scale=0.003).to_json())
        code = main(["run", "--spec", str(spec_path), "--set", "seed=7"])
        assert code == 0
        assert "Table I" in capsys.readouterr().out

    def test_sweep_json_grid(self, tmp_path, capsys):
        out = tmp_path / "sweep.json"
        code = main(
            [
                "sweep", "failover",
                "--set", "scale=0.0003",
                "--axis", "replication_factor=1,2",
                "--axis", "outage_density=0.3",
                "--json", str(out), "--quiet",
            ]
        )
        assert code == 0
        payload = json.loads(out.read_text())
        assert len(payload["runs"]) == 2
        assert {run["point"]["replication_factor"] for run in payload["runs"]} == {1, 2}
        assert all("dedup_accuracy" in run["metrics"] for run in payload["runs"])

    def test_sweep_bad_axis_exits_2(self, capsys):
        code = main(["sweep", "failover", "--axis", "warp_factor=1,2"])
        assert code == 2
        assert "warp_factor" in capsys.readouterr().err

    def test_presets_listing(self, capsys):
        assert main(["presets", "-v"]) == 0
        out = capsys.readouterr().out
        for name in EXPECTED_PRESETS:
            assert name in out

    def test_legacy_experiment_alias(self, capsys):
        assert main(["experiment", "figure6", "--scale", "0.002"]) == 0
        assert "Figure 6" in capsys.readouterr().out

    def test_legacy_experiment_failover_validation(self, capsys):
        code = main(
            ["experiment", "failover", "--scale", "0.0005", "--replication", "1"]
        )
        assert code == 2
        assert "replication" in capsys.readouterr().err


# ------------------------------------------------------------------ deprecation
class TestDeprecationShims:
    def test_shim_warns_and_matches_preset(self):
        from repro.analysis.experiments import run_figure6

        with pytest.warns(DeprecationWarning):
            legacy = run_figure6(scale=0.002)
        assert legacy.render() == run_scenario("figure6", scale=0.002).render()

    def test_shim_falls_back_for_rich_arguments(self):
        from repro.analysis.experiments import run_tier_ablation
        from repro.workloads.profiles import MAIL_SERVER

        with pytest.warns(DeprecationWarning):
            result = run_tier_ablation(profile=MAIL_SERVER, scale=0.0005)
        assert result.row("shhc-hybrid").lookups > 0

    def test_get_preset_descriptions(self):
        for name in EXPECTED_PRESETS:
            preset = get_preset(name)
            assert preset.description
            assert "seed" in preset.valid_keys()


# ------------------------------------------------------------------- edge cases
class TestScalarListAndProfileHandling:
    def test_single_profile_string_is_not_iterated_charwise(self):
        # `--set profiles=mail-server` arrives as a bare string, not a list.
        result = run_scenario("table1", scale=0.003, profiles="mail-server")
        assert [row["workload"] for row in result.metrics["rows"]] == ["mail-server"]

    def test_single_batch_size_scalar(self):
        result = run_scenario("batch_tradeoff", batch_sizes=128, scale=0.0002)
        assert [p["batch_size"] for p in result.metrics["points"]] == [128]

    def test_bad_profile_name_is_a_spec_error(self):
        with pytest.raises(SpecError):
            run_scenario("figure6", scale=0.002, profiles="bogus")
        with pytest.raises(SpecError):
            run_scenario("tier_ablation", scale=0.0005, profile="bogus")

    def test_bad_profile_name_via_cli_exits_2(self, capsys):
        assert main(["run", "figure6", "--set", "profiles=bogus"]) == 2
        assert "bogus" in capsys.readouterr().err

    def test_registering_a_custom_preset_keeps_builtins_visible(self):
        from repro.scenarios import Preset, ScenarioResult, register_preset

        register_preset(
            Preset(
                name="_test_custom",
                description="registry regression probe",
                runner=lambda spec: ScenarioResult(spec=spec),
            )
        )
        names = available_presets()
        assert "_test_custom" in names and EXPECTED_PRESETS <= set(names)

    def test_outage_plan_with_one_batch_fails_fast(self):
        with pytest.raises(ValueError, match="batch_size"):
            run_scenario(
                "failover", scale=0.0004, batch_size=10**6, outage_density=0.3
            )
