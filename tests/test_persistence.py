"""Tests for crash-consistent node storage: snapshots, persistence, kill/restart."""

from __future__ import annotations

import os

import pytest

from repro.core.cluster import SHHCCluster
from repro.core.config import ClusterConfig, HashNodeConfig
from repro.core.hash_node import HybridHashNode
from repro.core.persistence import NodePersistence, PersistencePolicy
from repro.dedup.fingerprint import synthetic_fingerprint
from repro.simulation.costmodel import CostModel
from repro.storage.bloom import BloomFilter
from repro.storage.cuckoo import CuckooHashTable
from repro.storage.snapshot import SnapshotError, read_snapshot, write_snapshot

NODE_CONFIG = HashNodeConfig(
    ram_cache_entries=128,
    bloom_expected_items=4_096,
    ssd_buckets=1 << 8,
)


def _cluster_config(num_nodes: int = 3, replication_factor: int = 2) -> ClusterConfig:
    return ClusterConfig(
        num_nodes=num_nodes,
        replication_factor=replication_factor,
        node=NODE_CONFIG,
    )


# ---------------------------------------------------------------------- snapshot
class TestSnapshotFile:
    def test_roundtrip_meta_and_payload(self, tmp_path):
        path = str(tmp_path / "state.snap")
        payload = bytes(range(256)) * 10
        written = write_snapshot(path, payload, {"records": 7, "kind": "bloom"})
        assert written == os.path.getsize(path) > len(payload)
        meta, loaded = read_snapshot(path)
        assert meta == {"records": 7, "kind": "bloom"}
        assert bytes(loaded) == payload

    def test_read_without_mmap(self, tmp_path):
        path = str(tmp_path / "state.snap")
        write_snapshot(path, b"payload", {"n": 1})
        meta, loaded = read_snapshot(path, use_mmap=False)
        assert meta["n"] == 1 and bytes(loaded) == b"payload"

    def test_write_leaves_no_tmp_residue(self, tmp_path):
        path = str(tmp_path / "state.snap")
        write_snapshot(path, b"x", {})
        assert os.listdir(str(tmp_path)) == ["state.snap"]

    def test_missing_file_raises(self, tmp_path):
        with pytest.raises(SnapshotError):
            read_snapshot(str(tmp_path / "absent.snap"))

    def test_bad_magic_raises(self, tmp_path):
        path = str(tmp_path / "state.snap")
        write_snapshot(path, b"payload", {})
        data = bytearray(open(path, "rb").read())
        data[0] ^= 0xFF
        open(path, "wb").write(bytes(data))
        with pytest.raises(SnapshotError):
            read_snapshot(path)

    def test_truncated_payload_raises(self, tmp_path):
        path = str(tmp_path / "state.snap")
        write_snapshot(path, b"0123456789", {})
        size = os.path.getsize(path)
        with open(path, "r+b") as file:
            file.truncate(size - 4)
        with pytest.raises(SnapshotError):
            read_snapshot(path)

    def test_corrupt_payload_byte_raises(self, tmp_path):
        path = str(tmp_path / "state.snap")
        write_snapshot(path, b"0123456789", {})
        data = bytearray(open(path, "rb").read())
        data[-1] ^= 0x01  # last payload byte: CRC must catch it
        open(path, "wb").write(bytes(data))
        with pytest.raises(SnapshotError):
            read_snapshot(path)


class TestBloomSnapshotPayload:
    def test_roundtrip_preserves_membership_and_count(self):
        source = BloomFilter(expected_items=512)
        keys = [synthetic_fingerprint(i).digest for i in range(100)]
        source.add_many(keys)
        payload = source.snapshot_payload()

        target = BloomFilter(expected_items=512)
        target.restore_payload(payload, source.count)
        assert target.count == source.count
        assert all(key in target for key in keys)

    def test_restore_rejects_wrong_geometry(self):
        source = BloomFilter(expected_items=512)
        target = BloomFilter(expected_items=8_192)
        with pytest.raises(ValueError):
            target.restore_payload(source.snapshot_payload(), 0)

    def test_restore_mutates_bits_in_place(self):
        # The exec-generated probe kernels capture the bit array at
        # construction; restore must fill that same object, not rebind it.
        bloom = BloomFilter(expected_items=512)
        bits_before = bloom._bits
        other = BloomFilter(expected_items=512)
        other.add(b"key")
        bloom.restore_payload(other.snapshot_payload(), other.count)
        assert bloom._bits is bits_before
        assert b"key" in bloom


class TestCuckooSnapshotPayload:
    def test_roundtrip_bytes_int_bool_values(self):
        source = CuckooHashTable()
        source.put(b"bytes-key", b"blob")
        source.put(b"int-key", 4096)
        source.put(b"neg-key", -7)
        source.put(b"bool-key", True)
        target = CuckooHashTable()
        assert target.restore_payload(source.snapshot_payload()) == 4
        assert target.get(b"bytes-key") == b"blob"
        assert target.get(b"int-key") == 4096
        assert target.get(b"neg-key") == -7
        assert target.get(b"bool-key") is True

    def test_unsupported_value_type_raises(self):
        table = CuckooHashTable()
        table.put(b"key", 1.5)
        with pytest.raises(TypeError):
            table.snapshot_payload()


# ------------------------------------------------------------- node persistence
def _fresh_node(persistence=None) -> HybridHashNode:
    return HybridHashNode("node-0", config=NODE_CONFIG, persistence=persistence)


class TestNodePersistence:
    def test_cold_recovery_rebuilds_store_and_bloom(self, tmp_path):
        directory = str(tmp_path / "node-0")
        fingerprints = [synthetic_fingerprint(i) for i in range(50)]
        with NodePersistence(directory) as persistence:
            persistence.log_insert_many(
                (f.digest, f.chunk_size) for f in fingerprints
            )
        node = _fresh_node()
        with NodePersistence(directory) as persistence:
            report = persistence.recover_into(node)
        assert report.entries == 50
        assert report.replayed == 50  # cold: every live key re-hashed
        assert not report.snapshot_loaded
        assert len(node.store) == 50
        assert all(f in node for f in fingerprints)
        assert all(f.digest in node.bloom for f in fingerprints)
        # Recovered entries are already on flash: no owed buffer flushes.
        assert node.store._buffered_entries == 0

    def test_warm_recovery_replays_only_the_tail(self, tmp_path):
        directory = str(tmp_path / "node-0")
        head = [synthetic_fingerprint(i) for i in range(40)]
        tail = [synthetic_fingerprint(100 + i) for i in range(10)]
        bloom = BloomFilter(
            expected_items=NODE_CONFIG.bloom_expected_items,
            false_positive_rate=NODE_CONFIG.bloom_false_positive_rate,
        )
        with NodePersistence(directory) as persistence:
            persistence.log_insert_many((f.digest, f.chunk_size) for f in head)
            bloom.add_many([f.digest for f in head])
            persistence.take_snapshot(bloom, entries=len(head))
            persistence.log_insert_many((f.digest, f.chunk_size) for f in tail)
        node = _fresh_node()
        with NodePersistence(directory) as persistence:
            report = persistence.recover_into(node)
        assert report.snapshot_loaded
        assert report.snapshot_bytes > 0
        assert report.entries == 50
        assert report.replayed == len(tail)  # only post-snapshot records
        assert all(f in node for f in head + tail)
        assert all(f.digest in node.bloom for f in head + tail)

    def test_snapshot_due_follows_cadence(self, tmp_path):
        with NodePersistence(str(tmp_path / "n"), snapshot_every=10) as persistence:
            assert not persistence.snapshot_due()
            persistence.log_insert_many(
                (synthetic_fingerprint(i).digest, 1) for i in range(10)
            )
            assert persistence.snapshot_due()
            bloom = BloomFilter(expected_items=64)
            persistence.take_snapshot(bloom)
            assert not persistence.snapshot_due()

    def test_crash_between_intent_and_done_resumes_snapshot(self, tmp_path):
        directory = str(tmp_path / "node-0")
        fingerprints = [synthetic_fingerprint(i) for i in range(20)]
        with NodePersistence(directory) as persistence:
            persistence.log_insert_many(
                (f.digest, f.chunk_size) for f in fingerprints
            )
            # Simulate a crash mid-snapshot: the intent reaches the WAL but
            # neither the snapshot file nor the done record does.
            persistence.wal.append("snapshot", records=persistence.records)
        node = _fresh_node()
        with NodePersistence(directory) as persistence:
            report = persistence.recover_into(node)
            assert report.resumed_snapshot
            assert persistence.snapshots_taken == 1
        # The resumed snapshot is valid and used by the NEXT recovery.
        second = _fresh_node()
        with NodePersistence(directory) as persistence:
            again = persistence.recover_into(second)
        assert again.snapshot_loaded and again.replayed == 0
        assert len(second.store) == 20

    def test_deletes_in_tail_do_not_resurrect(self, tmp_path):
        directory = str(tmp_path / "node-0")
        keep = synthetic_fingerprint(1)
        gone = synthetic_fingerprint(2)
        with NodePersistence(directory) as persistence:
            persistence.log_insert(keep.digest, keep.chunk_size)
            persistence.log_insert(gone.digest, gone.chunk_size)
            persistence.log_remove(gone.digest)
        node = _fresh_node()
        with NodePersistence(directory) as persistence:
            report = persistence.recover_into(node)
        assert report.entries == 1
        assert keep in node and gone not in node

    def test_torn_container_tail_reported(self, tmp_path):
        directory = str(tmp_path / "node-0")
        fingerprint = synthetic_fingerprint(1)
        with NodePersistence(directory) as persistence:
            persistence.log_insert(fingerprint.digest, fingerprint.chunk_size)
            container = persistence.container.path
        with open(container, "ab") as log:
            log.write(b"\x01torn")
        node = _fresh_node()
        with NodePersistence(directory) as persistence:
            report = persistence.recover_into(node)
        assert report.truncated_bytes == 5
        assert report.entries == 1 and fingerprint in node


# -------------------------------------------------------------- node kill/restart
class TestNodeKillRestart:
    def test_kill_destroys_in_memory_state(self):
        node = _fresh_node()
        fingerprint = synthetic_fingerprint(1)
        assert not node.lookup(fingerprint).is_duplicate
        assert fingerprint in node
        node.kill()
        assert len(node.store) == 0
        assert fingerprint not in node
        assert fingerprint.digest not in node.bloom
        assert node.counters.get("kills") == 1

    def test_restart_without_persistence_is_honest_data_loss(self):
        node = _fresh_node()
        node.lookup(synthetic_fingerprint(1))
        node.kill()
        assert node.restart() is None
        assert len(node.store) == 0
        assert node.counters.get("restarts") == 1

    def test_restart_recovers_served_fingerprints(self, tmp_path):
        persistence = NodePersistence(str(tmp_path / "node-0"))
        node = _fresh_node(persistence)
        fingerprints = [synthetic_fingerprint(i) for i in range(30)]
        for batch_start in range(0, 30, 10):
            node.lookup_batch(fingerprints[batch_start:batch_start + 10])
        node.kill()
        report = node.restart()
        assert report is not None and report.entries == 30
        assert node.last_recovery is report
        assert all(f in node for f in fingerprints)
        # Verdicts after recovery: every recovered fingerprint is a duplicate.
        assert all(reply.is_duplicate for reply in node.lookup_batch(fingerprints))
        persistence.close()

    def test_construction_warm_start_from_prior_state(self, tmp_path):
        directory = str(tmp_path / "node-0")
        first = _fresh_node(NodePersistence(directory))
        fingerprints = [synthetic_fingerprint(i) for i in range(25)]
        first.lookup_batch(fingerprints)
        assert first.last_recovery is None  # no prior state existed
        first.persistence.close()
        # A new process: same directory, fresh node object.
        second = _fresh_node(NodePersistence(directory))
        assert second.last_recovery is not None
        assert second.last_recovery.entries == 25
        assert all(reply.is_duplicate for reply in second.lookup_batch(fingerprints))
        second.persistence.close()

    def test_snapshot_cadence_triggers_during_serving(self, tmp_path):
        persistence = NodePersistence(str(tmp_path / "node-0"), snapshot_every=16)
        node = _fresh_node(persistence)
        node.lookup_batch([synthetic_fingerprint(i) for i in range(64)])
        assert persistence.snapshots_taken >= 1
        assert node.counters.get("snapshots") >= 1
        persistence.close()


# ------------------------------------------------------------ cluster lifecycle
class TestClusterKillRestart:
    def test_kill_restart_roundtrip_with_persistence(self, tmp_path):
        policy = PersistencePolicy(directory=str(tmp_path), snapshot_every=32)
        cluster = SHHCCluster(_cluster_config(), persistence=policy)
        fingerprints = [synthetic_fingerprint(i) for i in range(120)]
        cluster.lookup_batch(fingerprints)
        victim = sorted(cluster.nodes)[0]
        held = len(cluster.nodes[victim].store)
        assert held > 0

        cluster.kill_node(victim)
        assert cluster.is_down(victim)
        assert len(cluster.nodes[victim].store) == 0

        report = cluster.restart_node(victim)
        assert not cluster.is_down(victim)
        assert report is not None and report.entries == held
        # Every previously served fingerprint must still be a duplicate.
        assert all(r.is_duplicate for r in cluster.lookup_batch(fingerprints))
        cluster.close()

    def test_restart_charges_recovery_through_ledger(self, tmp_path):
        policy = PersistencePolicy(directory=str(tmp_path))
        cluster = SHHCCluster(
            _cluster_config(), cost_model=CostModel(), persistence=policy
        )
        cluster.lookup_batch([synthetic_fingerprint(i) for i in range(80)])
        victim = sorted(cluster.nodes)[0]
        cluster.kill_node(victim)
        report = cluster.restart_node(victim)
        assert report is not None and report.charged_seconds > 0
        counters = cluster.ledger.counters
        assert counters.get("node_recoveries") == 1
        assert counters.get("recovery_replayed_entries") == (
            report.entries + report.replayed
        )
        cluster.close()

    def test_restart_without_persistence_loses_state(self):
        cluster = SHHCCluster(_cluster_config(num_nodes=2, replication_factor=1))
        fingerprints = [synthetic_fingerprint(i) for i in range(40)]
        cluster.lookup_batch(fingerprints)
        victim = sorted(cluster.nodes)[0]
        held = len(cluster.nodes[victim].store)
        assert held > 0
        cluster.kill_node(victim)
        assert cluster.restart_node(victim) is None
        assert len(cluster.nodes[victim].store) == 0

    def test_unknown_node_raises(self, tmp_path):
        cluster = SHHCCluster(_cluster_config())
        with pytest.raises(KeyError):
            cluster.kill_node("nope")
        with pytest.raises(KeyError):
            cluster.restart_node("nope")

    def test_process_restart_warms_whole_cluster(self, tmp_path):
        policy = PersistencePolicy(directory=str(tmp_path), snapshot_every=32)
        fingerprints = [synthetic_fingerprint(i) for i in range(150)]
        first = SHHCCluster(_cluster_config(), persistence=policy)
        first.lookup_batch(fingerprints)
        sizes = {name: len(node.store) for name, node in first.nodes.items()}
        first.close()

        second = SHHCCluster(_cluster_config(), persistence=policy)
        for name, node in second.nodes.items():
            assert len(node.store) == sizes[name]
            assert node.last_recovery is not None
        assert all(r.is_duplicate for r in second.lookup_batch(fingerprints))
        second.close()
