"""Tests for the hash-space partitioners."""

from __future__ import annotations

from collections import Counter

import pytest

from repro.core.partition import ConsistentHashRing, RangePartitioner
from repro.dedup.fingerprint import synthetic_fingerprint


FINGERPRINTS = [synthetic_fingerprint(i) for i in range(5000)]


class TestRangePartitioner:
    def test_requires_unique_nonempty_nodes(self):
        with pytest.raises(ValueError):
            RangePartitioner([])
        with pytest.raises(ValueError):
            RangePartitioner(["a", "a"])

    def test_owner_is_deterministic(self):
        partitioner = RangePartitioner(["n0", "n1", "n2", "n3"])
        fingerprint = synthetic_fingerprint(42)
        assert partitioner.owner(fingerprint) == partitioner.owner(fingerprint)

    def test_every_fingerprint_has_exactly_one_owner(self):
        partitioner = RangePartitioner(["n0", "n1", "n2", "n3"])
        owners = {partitioner.owner(fp) for fp in FINGERPRINTS}
        assert owners <= {"n0", "n1", "n2", "n3"}

    def test_uniform_distribution_over_sha1_keys(self):
        partitioner = RangePartitioner([f"n{i}" for i in range(4)])
        counts = Counter(partitioner.owner(fp) for fp in FINGERPRINTS)
        for count in counts.values():
            assert count == pytest.approx(len(FINGERPRINTS) / 4, rel=0.15)

    def test_owner_matches_declared_range(self):
        partitioner = RangePartitioner(["n0", "n1", "n2", "n3"])
        for fingerprint in FINGERPRINTS[:200]:
            owner = partitioner.owner(fingerprint)
            low, high = partitioner.range_of(owner)
            assert low <= partitioner.key_of(fingerprint) < high

    def test_ranges_cover_key_space_without_overlap(self):
        partitioner = RangePartitioner(["n0", "n1", "n2"])
        ranges = sorted(partitioner.range_of(node) for node in partitioner.nodes())
        assert ranges[0][0] == 0
        assert ranges[-1][1] == 1 << 64
        for (low_a, high_a), (low_b, _high_b) in zip(ranges, ranges[1:]):
            assert high_a == low_b

    def test_owners_returns_distinct_successors(self):
        partitioner = RangePartitioner(["n0", "n1", "n2", "n3"])
        owners = partitioner.owners(FINGERPRINTS[0], 3)
        assert len(owners) == 3
        assert len(set(owners)) == 3
        assert owners[0] == partitioner.owner(FINGERPRINTS[0])

    def test_owners_clamped_to_cluster_size(self):
        partitioner = RangePartitioner(["n0", "n1"])
        assert len(partitioner.owners(FINGERPRINTS[0], 5)) == 2
        with pytest.raises(ValueError):
            partitioner.owners(FINGERPRINTS[0], 0)

    def test_add_and_remove_node(self):
        partitioner = RangePartitioner(["n0", "n1"])
        partitioner.add_node("n2")
        assert partitioner.nodes() == ["n0", "n1", "n2"]
        partitioner.remove_node("n1")
        assert partitioner.nodes() == ["n0", "n2"]
        with pytest.raises(ValueError):
            partitioner.add_node("n0")
        with pytest.raises(KeyError):
            partitioner.remove_node("ghost")

    def test_cannot_remove_last_node(self):
        partitioner = RangePartitioner(["only"])
        with pytest.raises(ValueError):
            partitioner.remove_node("only")


class TestConsistentHashRing:
    def test_construction_validation(self):
        with pytest.raises(ValueError):
            ConsistentHashRing([])
        with pytest.raises(ValueError):
            ConsistentHashRing(["a"], virtual_nodes=0)
        with pytest.raises(ValueError):
            ConsistentHashRing(["a", "a"])

    def test_owner_is_deterministic_and_member(self):
        ring = ConsistentHashRing(["n0", "n1", "n2"], virtual_nodes=32)
        for fingerprint in FINGERPRINTS[:100]:
            owner = ring.owner(fingerprint)
            assert owner == ring.owner(fingerprint)
            assert owner in {"n0", "n1", "n2"}

    def test_token_count_per_node(self):
        ring = ConsistentHashRing(["n0", "n1"], virtual_nodes=64)
        assert ring.token_count("n0") == 64
        assert ring.token_count("n1") == 64

    def test_distribution_roughly_uniform_with_many_tokens(self):
        ring = ConsistentHashRing([f"n{i}" for i in range(4)], virtual_nodes=256)
        counts = Counter(ring.owner(fp) for fp in FINGERPRINTS)
        for count in counts.values():
            assert count == pytest.approx(len(FINGERPRINTS) / 4, rel=0.35)

    def test_ownership_fractions_sum_to_one(self):
        ring = ConsistentHashRing(["n0", "n1", "n2"], virtual_nodes=128)
        fractions = ring.ownership_fractions()
        assert sum(fractions.values()) == pytest.approx(1.0)
        assert set(fractions) == {"n0", "n1", "n2"}

    def test_node_join_moves_limited_fraction_of_keys(self):
        ring = ConsistentHashRing([f"n{i}" for i in range(4)], virtual_nodes=128)
        before = {fp.digest: ring.owner(fp) for fp in FINGERPRINTS}
        ring.add_node("n4")
        moved = sum(1 for fp in FINGERPRINTS if ring.owner(fp) != before[fp.digest])
        # Ideal movement is 1/5 of the keys; allow generous slack.
        assert moved / len(FINGERPRINTS) < 0.35
        # Every moved key must now belong to the new node.
        for fingerprint in FINGERPRINTS:
            if ring.owner(fingerprint) != before[fingerprint.digest]:
                assert ring.owner(fingerprint) == "n4"

    def test_node_leave_only_reassigns_its_keys(self):
        ring = ConsistentHashRing([f"n{i}" for i in range(4)], virtual_nodes=128)
        before = {fp.digest: ring.owner(fp) for fp in FINGERPRINTS}
        ring.remove_node("n2")
        for fingerprint in FINGERPRINTS:
            if before[fingerprint.digest] != "n2":
                assert ring.owner(fingerprint) == before[fingerprint.digest]
            else:
                assert ring.owner(fingerprint) != "n2"

    def test_owners_are_distinct_physical_nodes(self):
        ring = ConsistentHashRing(["n0", "n1", "n2"], virtual_nodes=64)
        owners = ring.owners(FINGERPRINTS[0], 3)
        assert len(owners) == 3
        assert len(set(owners)) == 3

    def test_cannot_remove_last_node(self):
        ring = ConsistentHashRing(["solo"])
        with pytest.raises(ValueError):
            ring.remove_node("solo")
        with pytest.raises(KeyError):
            ring.remove_node("ghost")

    def test_add_existing_rejected(self):
        ring = ConsistentHashRing(["n0"])
        with pytest.raises(ValueError):
            ring.add_node("n0")


class TestEpochAndKeyAddressedOwners:
    """Membership epochs and the shared-tuple owners_by_key fast path."""

    def test_epoch_bumps_on_membership_changes(self):
        for partitioner in (
            RangePartitioner(["a", "b"]),
            ConsistentHashRing(["a", "b"], virtual_nodes=8),
        ):
            start = partitioner.epoch
            partitioner.add_node("c")
            assert partitioner.epoch > start
            after_add = partitioner.epoch
            partitioner.remove_node("c")
            assert partitioner.epoch > after_add

    def test_owners_by_key_matches_owners(self):
        from repro.core.partition import key_of_digest

        fingerprints = [synthetic_fingerprint(i) for i in range(200)]
        for partitioner in (
            RangePartitioner([f"n{i}" for i in range(5)]),
            ConsistentHashRing([f"n{i}" for i in range(5)], virtual_nodes=16),
        ):
            for count in (1, 2, 4):
                for fingerprint in fingerprints:
                    key = key_of_digest(fingerprint.digest)
                    assert list(partitioner.owners_by_key(key, count)) == (
                        partitioner.owners(fingerprint, count)
                    )

    def test_key_of_digest_matches_prefix_int(self):
        from repro.core.partition import KEY_SPACE_BITS, key_of_digest

        for i in range(50):
            fingerprint = synthetic_fingerprint(i * 13)
            assert key_of_digest(fingerprint.digest) == fingerprint.prefix_int(KEY_SPACE_BITS)

    def test_owner_cycles_invalidate_on_membership_change(self):
        partitioner = RangePartitioner(["a", "b", "c"])
        fingerprint = synthetic_fingerprint(9)
        before = partitioner.owners(fingerprint, 2)
        partitioner.add_node("d")
        after = partitioner.owners(fingerprint, 2)
        assert set(after) <= {"a", "b", "c", "d"}
        assert len(after) == 2
        ring = ConsistentHashRing(["a", "b", "c"], virtual_nodes=8)
        first = ring.owners(fingerprint, 2)
        ring.add_node("d")
        second = ring.owners(fingerprint, 2)
        assert len(second) == 2
        assert first != second or True  # membership change may or may not move this key
