"""Tests for the front-end tier: upload plans, web servers, clients, gateway."""

from __future__ import annotations

import os

import pytest

from repro.core.cluster import SHHCCluster
from repro.core.config import ClusterConfig, HashNodeConfig
from repro.core.protocol import LookupReply, ServedFrom
from repro.dedup.chunking import FixedSizeChunker
from repro.dedup.fingerprint import fingerprint_data, synthetic_fingerprint
from repro.frontend.client import BackupClient, SimulatedClient
from repro.frontend.gateway import BackupService, build_simulated_service
from repro.frontend.upload_plan import UploadPlan
from repro.frontend.webserver import ClientBatchRequest, WebFrontEnd
from repro.network.loadbalancer import LoadBalancer
from repro.simulation.engine import Simulator
from repro.storage.object_store import CloudObjectStore


def small_cluster(num_nodes=2) -> SHHCCluster:
    return SHHCCluster(
        ClusterConfig(
            num_nodes=num_nodes,
            node=HashNodeConfig(ram_cache_entries=512, bloom_expected_items=50_000, ssd_buckets=1 << 10),
        )
    )


class TestUploadPlan:
    def _replies(self, duplicates, uniques):
        replies = []
        for index in range(duplicates):
            replies.append(LookupReply(synthetic_fingerprint(index, 100), True, ServedFrom.RAM))
        for index in range(uniques):
            replies.append(LookupReply(synthetic_fingerprint(1000 + index, 100), False, ServedFrom.NEW))
        return replies

    def test_from_replies_partitions_correctly(self):
        plan = UploadPlan.from_replies("alice", self._replies(3, 2))
        assert len(plan.already_stored) == 3
        assert len(plan.to_upload) == 2
        assert plan.total_chunks == 5

    def test_byte_accounting_and_savings(self):
        plan = UploadPlan.from_replies("alice", self._replies(3, 1))
        assert plan.upload_bytes == 100
        assert plan.logical_bytes == 400
        assert plan.bandwidth_savings == pytest.approx(0.75)

    def test_empty_plan_savings(self):
        assert UploadPlan(client_id="x").bandwidth_savings == 0.0

    def test_merge_same_client(self):
        first = UploadPlan.from_replies("alice", self._replies(1, 1))
        second = UploadPlan.from_replies("alice", self._replies(2, 0))
        merged = first.merge(second)
        assert merged.total_chunks == 4
        assert len(merged.already_stored) == 3

    def test_merge_different_clients_rejected(self):
        with pytest.raises(ValueError):
            UploadPlan(client_id="a").merge(UploadPlan(client_id="b"))


class TestWebFrontEnd:
    def test_handle_batch_builds_plan(self):
        frontend = WebFrontEnd("web-0", small_cluster())
        fingerprints = [synthetic_fingerprint(i % 5) for i in range(20)]
        response = frontend.handle_batch(ClientBatchRequest("alice", fingerprints))
        assert len(response.replies) == 20
        assert len(response.plan.to_upload) == 5
        assert len(response.plan.already_stored) == 15
        assert frontend.stats()["fingerprints"] == 20

    def test_replies_returned_in_request_order(self):
        frontend = WebFrontEnd("web-0", small_cluster(num_nodes=4))
        fingerprints = [synthetic_fingerprint(i) for i in range(64)]
        response = frontend.handle_batch(ClientBatchRequest("alice", fingerprints))
        assert [r.fingerprint for r in response.replies] == fingerprints

    def test_empty_batch_rejected(self):
        with pytest.raises(ValueError):
            ClientBatchRequest("alice", [])

    def test_simulated_frontend_fans_out_and_responds(self, sim):
        config = ClusterConfig(
            num_nodes=2,
            node=HashNodeConfig(ram_cache_entries=512, bloom_expected_items=50_000, ssd_buckets=1 << 10),
        )
        deployment = build_simulated_service(sim, config, num_clients=1, num_web_servers=1)
        fingerprints = [synthetic_fingerprint(i) for i in range(40)]
        request = ClientBatchRequest("client-0", fingerprints)
        responses = []
        deployment.network.rpc.call(
            "client-0", "web-0", request, request.payload_bytes
        ).add_callback(lambda event: responses.append((sim.now, event.value)))
        sim.run()
        finish_time, response = responses[0]
        assert finish_time > 0
        assert [r.fingerprint for r in response.replies] == fingerprints
        assert len(response.plan.to_upload) == 40
        assert len(deployment.cluster) == 40


class TestBackupClient:
    def test_backup_uploads_only_unique_chunks(self):
        cluster = small_cluster()
        store = CloudObjectStore()
        frontend = WebFrontEnd("web-0", cluster)
        client = BackupClient("alice", frontend, store, FixedSizeChunker(128), batch_size=16)
        data = os.urandom(128 * 20)
        plan_first = client.backup(data)
        plan_second = client.backup(data)
        assert len(plan_first.to_upload) == 20
        assert len(plan_second.to_upload) == 0
        assert store.total_bytes() == len(data)

    def test_uploaded_chunks_match_fingerprints(self):
        cluster = small_cluster()
        store = CloudObjectStore(verify_content=True)
        frontend = WebFrontEnd("web-0", cluster)
        client = BackupClient("alice", frontend, store, FixedSizeChunker(64), batch_size=8)
        data = os.urandom(640)
        client.backup(data)
        for chunk_start in range(0, len(data), 64):
            digest = fingerprint_data(data[chunk_start:chunk_start + 64]).digest
            assert digest in store

    def test_two_clients_share_the_dedup_domain(self):
        cluster = small_cluster()
        store = CloudObjectStore()
        frontend = WebFrontEnd("web-0", cluster)
        data = os.urandom(4096)
        alice = BackupClient("alice", frontend, store, FixedSizeChunker(256))
        bob = BackupClient("bob", frontend, store, FixedSizeChunker(256))
        alice.backup(data)
        plan = bob.backup(data)
        assert len(plan.to_upload) == 0
        assert plan.bandwidth_savings == pytest.approx(1.0)


class TestSimulatedClient:
    def _deployment(self, sim, num_nodes=2):
        config = ClusterConfig(
            num_nodes=num_nodes,
            node=HashNodeConfig(ram_cache_entries=2048, bloom_expected_items=50_000, ssd_buckets=1 << 10),
        )
        return build_simulated_service(sim, config, num_clients=2, num_web_servers=2)

    def test_trace_replay_completes_and_counts(self, sim):
        deployment = self._deployment(sim)
        fingerprints = [synthetic_fingerprint(i % 300) for i in range(1000)]
        client = SimulatedClient(
            "client-0",
            deployment.network.rpc,
            deployment.load_balancer,
            fingerprints,
            batch_size=64,
            sim=sim,
        )
        client.start()
        sim.run()
        assert client.stats.fingerprints_sent == 1000
        assert client.stats.batches_sent == pytest.approx(1000 / 64, abs=1)
        assert client.stats.duplicates_found == 700
        assert client.stats.elapsed > 0
        assert client.stats.throughput > 0

    def test_two_clients_run_concurrently(self, sim):
        deployment = self._deployment(sim)
        clients = []
        for index in range(2):
            fingerprints = [synthetic_fingerprint(index * 10_000 + i) for i in range(400)]
            client = SimulatedClient(
                f"client-{index}",
                deployment.network.rpc,
                deployment.load_balancer,
                fingerprints,
                batch_size=32,
                sim=sim,
            )
            clients.append(client)
            client.start()
        sim.run()
        assert all(c.stats.fingerprints_sent == 400 for c in clients)
        # Concurrent execution: combined elapsed must be far less than serial.
        serial_estimate = sum(c.stats.elapsed for c in clients)
        assert max(c.stats.finished_at for c in clients) < serial_estimate

    def test_batching_improves_throughput(self, sim):
        fingerprints = [synthetic_fingerprint(i) for i in range(512)]
        throughputs = {}
        for batch_size in (1, 128):
            local_sim = Simulator()
            deployment = self._deployment(local_sim)
            client = SimulatedClient(
                "client-0",
                deployment.network.rpc,
                deployment.load_balancer,
                fingerprints,
                batch_size=batch_size,
                sim=local_sim,
            )
            client.start()
            local_sim.run()
            throughputs[batch_size] = client.stats.throughput
        assert throughputs[128] > throughputs[1] * 5

    def test_window_validation(self, sim):
        deployment = self._deployment(sim)
        with pytest.raises(ValueError):
            SimulatedClient(
                "client-0",
                deployment.network.rpc,
                deployment.load_balancer,
                [synthetic_fingerprint(1)],
                window=0,
                sim=sim,
            )


class TestBackupService:
    def test_end_to_end_backup_dedup(self):
        service = BackupService(
            ClusterConfig(
                num_nodes=4,
                node=HashNodeConfig(ram_cache_entries=4096, bloom_expected_items=100_000),
            ),
            batch_size=32,
        )
        data = os.urandom(8192 * 8)
        plan_alice = service.backup("alice", data)
        plan_bob = service.backup("bob", data)
        assert len(plan_alice.to_upload) == 8
        assert len(plan_bob.to_upload) == 0
        assert service.stored_fingerprints() == 8
        assert service.physical_bytes() == len(data)

    def test_client_is_sticky_to_a_web_server(self):
        service = BackupService(num_web_servers=3)
        first = service.client("alice")
        second = service.client("alice")
        assert first is second

    def test_stats_structure(self):
        service = BackupService()
        service.backup("alice", os.urandom(8192))
        stats = service.stats()
        assert {"cluster", "storage_distribution", "object_store", "web_servers"} <= set(stats)

    def test_validation(self):
        with pytest.raises(ValueError):
            BackupService(num_web_servers=0)
