"""Shared fixtures for the test suite."""

from __future__ import annotations

import pytest

from repro.core.config import ClusterConfig, HashNodeConfig
from repro.dedup.fingerprint import synthetic_fingerprint
from repro.simulation.engine import Simulator
from repro.workloads.profiles import MAIL_SERVER, WEB_SERVER
from repro.workloads.traces import TraceGenerator


@pytest.fixture
def sim() -> Simulator:
    """A fresh simulator."""
    return Simulator()


@pytest.fixture
def small_node_config() -> HashNodeConfig:
    """Hash-node configuration sized for unit tests."""
    return HashNodeConfig(
        ram_cache_entries=256,
        bloom_expected_items=10_000,
        ssd_buckets=1 << 10,
    )


@pytest.fixture
def small_cluster_config(small_node_config: HashNodeConfig) -> ClusterConfig:
    """Four-node cluster configuration sized for unit tests."""
    return ClusterConfig(num_nodes=4, node=small_node_config)


@pytest.fixture
def fingerprints_1k():
    """1000 fingerprints over 600 identities (so ~400 duplicates)."""
    return [synthetic_fingerprint(i % 600, 8192) for i in range(1000)]


@pytest.fixture
def unique_fingerprints_500():
    """500 distinct fingerprints."""
    return [synthetic_fingerprint(10_000 + i, 4096) for i in range(500)]


@pytest.fixture(scope="session")
def web_server_trace():
    """A small web-server-profile trace shared across tests (read-only)."""
    return TraceGenerator(WEB_SERVER.scaled(0.002), seed=3).materialize()


@pytest.fixture(scope="session")
def mail_server_trace():
    """A small mail-server-profile trace shared across tests (read-only)."""
    return TraceGenerator(MAIL_SERVER.scaled(0.0005), seed=3).materialize()
