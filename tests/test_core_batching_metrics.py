"""Tests for query batching helpers and cluster metrics."""

from __future__ import annotations

import pytest

from repro.core.batching import BatchAccumulator, reassemble_replies, split_batch_by_owner
from repro.core.hash_node import NodeSnapshot
from repro.core.metrics import ClusterMetrics, LoadBalanceReport
from repro.core.partition import RangePartitioner
from repro.core.protocol import BatchLookupReply, LookupReply, ServedFrom
from repro.dedup.fingerprint import synthetic_fingerprint


PARTITIONER = RangePartitioner(["n0", "n1", "n2", "n3"])
FINGERPRINTS = [synthetic_fingerprint(i) for i in range(400)]


class TestBatchAccumulator:
    def test_batch_emitted_when_full(self):
        accumulator = BatchAccumulator(PARTITIONER, batch_size=8)
        ready = []
        for fingerprint in FINGERPRINTS:
            ready.extend(accumulator.add(fingerprint))
        assert all(len(request) == 8 for _node, request in ready)
        # Every emitted batch is addressed to the owner of all its fingerprints.
        for node, request in ready:
            assert all(PARTITIONER.owner(fp) == node for fp in request.fingerprints)

    def test_flush_emits_partial_batches(self):
        accumulator = BatchAccumulator(PARTITIONER, batch_size=1000)
        accumulator.add_many(FINGERPRINTS[:10])
        flushed = accumulator.flush()
        total = sum(len(request) for _node, request in flushed)
        assert total == 10
        assert accumulator.pending_count() == 0

    def test_batch_size_one_emits_immediately(self):
        accumulator = BatchAccumulator(PARTITIONER, batch_size=1)
        ready = accumulator.add(FINGERPRINTS[0])
        assert len(ready) == 1
        assert len(ready[0][1]) == 1

    def test_callback_mode(self):
        received = []
        accumulator = BatchAccumulator(
            PARTITIONER, batch_size=4, on_batch_ready=lambda node, request: received.append(node)
        )
        accumulator.add_many(FINGERPRINTS[:64])
        assert len(received) == accumulator.batches_emitted
        assert accumulator.fingerprints_added == 64

    def test_poll_expired_respects_max_delay(self):
        accumulator = BatchAccumulator(PARTITIONER, batch_size=1000, max_delay=5.0)
        accumulator.add(FINGERPRINTS[0], now=0.0)
        assert accumulator.poll_expired(now=3.0) == []
        expired = accumulator.poll_expired(now=6.0)
        assert len(expired) == 1

    def test_poll_expired_without_max_delay_is_noop(self):
        accumulator = BatchAccumulator(PARTITIONER, batch_size=10)
        accumulator.add(FINGERPRINTS[0], now=0.0)
        assert accumulator.poll_expired(now=100.0) == []

    def test_pending_count_per_node(self):
        accumulator = BatchAccumulator(PARTITIONER, batch_size=1000)
        accumulator.add_many(FINGERPRINTS[:40])
        per_node = sum(accumulator.pending_count(node) for node in PARTITIONER.nodes())
        assert per_node == accumulator.pending_count() == 40

    def test_validation(self):
        with pytest.raises(ValueError):
            BatchAccumulator(PARTITIONER, batch_size=0)

    def test_batch_ids_are_unique(self):
        accumulator = BatchAccumulator(PARTITIONER, batch_size=2)
        ready = accumulator.add_many(FINGERPRINTS[:64])
        ids = [request.batch_id for _node, request in ready]
        assert len(ids) == len(set(ids))


class TestSplitAndReassemble:
    def test_split_covers_all_positions_exactly_once(self):
        split = split_batch_by_owner(FINGERPRINTS[:100], PARTITIONER)
        positions = sorted(p for _req, pos in split.values() for p in pos)
        assert positions == list(range(100))

    def test_split_routes_to_owner(self):
        split = split_batch_by_owner(FINGERPRINTS[:100], PARTITIONER)
        for node, (request, _positions) in split.items():
            assert all(PARTITIONER.owner(fp) == node for fp in request.fingerprints)

    def test_reassemble_restores_original_order(self):
        fingerprints = FINGERPRINTS[:50]
        split = split_batch_by_owner(fingerprints, PARTITIONER)
        per_node = []
        for node, (request, positions) in split.items():
            replies = [
                LookupReply(fp, False, ServedFrom.NEW, node_id=node)
                for fp in request.fingerprints
            ]
            per_node.append((BatchLookupReply(replies=replies, node_id=node), positions))
        merged = reassemble_replies(len(fingerprints), per_node)
        assert [reply.fingerprint for reply in merged] == fingerprints

    def test_reassemble_detects_missing_positions(self):
        fingerprints = FINGERPRINTS[:10]
        split = split_batch_by_owner(fingerprints, PARTITIONER)
        per_node = list(split.items())[:-1]  # drop one node's replies
        partial = [
            (
                BatchLookupReply(
                    replies=[LookupReply(fp, False, ServedFrom.NEW) for fp in request.fingerprints],
                    node_id=node,
                ),
                positions,
            )
            for node, (request, positions) in per_node
        ]
        with pytest.raises(ValueError):
            reassemble_replies(len(fingerprints), partial)

    def test_reassemble_detects_length_mismatch(self):
        fingerprints = FINGERPRINTS[:4]
        reply = BatchLookupReply(
            replies=[LookupReply(fingerprints[0], False, ServedFrom.NEW)], node_id="n0"
        )
        with pytest.raises(ValueError):
            reassemble_replies(4, [(reply, [0, 1])])


def snapshot(node_id: str, entries: int, lookups: int, ram_hits: int = 0) -> NodeSnapshot:
    return NodeSnapshot(
        node_id=node_id,
        entries=entries,
        ram_cached=0,
        lookups=lookups,
        ram_hits=ram_hits,
        ssd_hits=0,
        new_entries=entries,
        destages=0,
        bloom_negative_shortcuts=0,
        bloom_false_positives=0,
    )


class TestLoadBalanceReport:
    def test_fractions_sum_to_one(self):
        report = LoadBalanceReport({"a": 25, "b": 25, "c": 25, "d": 25})
        assert sum(report.fractions().values()) == pytest.approx(1.0)
        assert report.coefficient_of_variation == pytest.approx(0.0)
        assert report.max_over_mean == pytest.approx(1.0)
        assert report.max_deviation_from_even() == pytest.approx(0.0)

    def test_imbalance_detected(self):
        report = LoadBalanceReport({"a": 70, "b": 10, "c": 10, "d": 10})
        assert report.max_over_mean == pytest.approx(70 / 25)
        assert report.coefficient_of_variation > 0.5
        assert report.max_deviation_from_even() == pytest.approx(0.45)

    def test_empty_report(self):
        report = LoadBalanceReport({})
        assert report.total == 0
        assert report.fractions() == {}
        assert report.max_over_mean == 1.0


class TestClusterMetrics:
    def test_totals_aggregate_across_snapshots(self):
        metrics = ClusterMetrics(
            snapshots=[snapshot("n0", 100, 150, ram_hits=50), snapshot("n1", 80, 100, ram_hits=20)]
        )
        assert metrics.total_entries == 180
        assert metrics.total_lookups == 250
        assert metrics.ram_hits == 70
        assert metrics.total_new_entries == 180
        assert metrics.duplicate_ratio() == pytest.approx(70 / 250)
        assert metrics.ram_hit_ratio() == pytest.approx(70 / 250)

    def test_distributions(self):
        metrics = ClusterMetrics(snapshots=[snapshot("n0", 100, 1), snapshot("n1", 100, 3)])
        assert metrics.storage_distribution().fractions() == {"n0": 0.5, "n1": 0.5}
        assert metrics.lookup_distribution().counts == {"n0": 1, "n1": 3}
        assert set(metrics.tier_breakdown()) == {"ram", "ssd", "new"}

    def test_as_dict_keys(self):
        metrics = ClusterMetrics(snapshots=[snapshot("n0", 10, 10)])
        assert {"nodes", "lookups", "entries", "storage_cv"} <= set(metrics.as_dict())

    def test_empty_metrics(self):
        metrics = ClusterMetrics()
        assert metrics.duplicate_ratio() == 0.0
        assert metrics.total_lookups == 0
