"""Tests for the hybrid hash node (the paper's Figure 3/4 behaviour)."""

from __future__ import annotations

import pytest

from repro.core.config import HashNodeConfig
from repro.core.hash_node import HybridHashNode
from repro.core.protocol import BatchLookupRequest, ServedFrom
from repro.dedup.fingerprint import synthetic_fingerprint
from repro.simulation.engine import Simulator


def make_node(sim=None, **overrides) -> HybridHashNode:
    defaults = dict(ram_cache_entries=64, bloom_expected_items=10_000, ssd_buckets=1 << 10)
    defaults.update(overrides)
    return HybridHashNode("node-0", HashNodeConfig(**defaults), sim=sim)


class TestLookupFlow:
    def test_unknown_fingerprint_is_unique_and_inserted(self):
        node = make_node()
        fingerprint = synthetic_fingerprint(1)
        reply = node.lookup(fingerprint)
        assert reply.is_duplicate is False
        assert reply.served_from is ServedFrom.NEW
        assert len(node) == 1
        assert fingerprint in node

    def test_repeat_lookup_is_ram_hit(self):
        node = make_node()
        fingerprint = synthetic_fingerprint(1)
        node.lookup(fingerprint)
        reply = node.lookup(fingerprint)
        assert reply.is_duplicate is True
        assert reply.served_from is ServedFrom.RAM

    def test_evicted_fingerprint_served_from_ssd(self):
        node = make_node(ram_cache_entries=4)
        target = synthetic_fingerprint(0)
        node.lookup(target)
        # Push enough other fingerprints through to evict the target from RAM.
        for index in range(1, 50):
            node.lookup(synthetic_fingerprint(index))
        assert target.digest not in node.cache
        reply = node.lookup(target)
        assert reply.is_duplicate is True
        assert reply.served_from is ServedFrom.SSD
        # The SSD hit promotes it back into RAM.
        assert target.digest in node.cache

    def test_destage_counter_increments_on_eviction(self):
        node = make_node(ram_cache_entries=4)
        for index in range(20):
            node.lookup(synthetic_fingerprint(index))
        assert node.snapshot().destages == 16

    def test_bloom_negative_shortcut_avoids_ssd_read(self):
        node = make_node()
        before = node.store.page_reads
        node.lookup(synthetic_fingerprint(123))
        assert node.store.page_reads == before  # no SSD probe for a definite miss
        assert node.snapshot().bloom_negative_shortcuts == 1

    def test_ram_hit_is_cheaper_than_ssd_hit(self):
        node = make_node(ram_cache_entries=4)
        target = synthetic_fingerprint(0)
        node.lookup(target)
        ram_hit = node.lookup(target)
        for index in range(1, 50):
            node.lookup(synthetic_fingerprint(index))
        ssd_hit = node.lookup(target)
        assert ssd_hit.served_from is ServedFrom.SSD
        assert ram_hit.service_time < ssd_hit.service_time

    def test_lookup_batch_preserves_order_and_counts(self):
        node = make_node()
        fingerprints = [synthetic_fingerprint(i % 10) for i in range(30)]
        replies = node.lookup_batch(fingerprints)
        assert [r.fingerprint for r in replies] == fingerprints
        assert sum(1 for r in replies if not r.is_duplicate) == 10
        assert len(node) == 10

    def test_counters_consistency(self):
        node = make_node()
        for index in range(40):
            node.lookup(synthetic_fingerprint(index % 8))
        snapshot = node.snapshot()
        assert snapshot.lookups == 40
        assert snapshot.new_entries == 8
        assert snapshot.ram_hits + snapshot.ssd_hits + snapshot.new_entries == 40
        assert snapshot.entries == 8

    def test_contains_is_readonly(self):
        node = make_node()
        fingerprint = synthetic_fingerprint(5)
        assert fingerprint not in node
        assert len(node) == 0


class TestBatchEquivalence:
    """The batched-bloom lookup path must be behaviour-identical to looping
    over single lookups -- verdicts, tiers, counters and service times."""

    def test_batch_matches_sequential_with_tiny_cache(self):
        # ram_cache_entries=8 forces LRU evictions *within* a batch, the case
        # where a stale pre-computed bloom verdict would corrupt results.
        import random

        rng = random.Random(42)
        fingerprints = [synthetic_fingerprint(rng.randrange(60)) for _ in range(1500)]
        sequential = make_node(ram_cache_entries=8)
        batched = make_node(ram_cache_entries=8)
        sequential_replies = [sequential.lookup(fp) for fp in fingerprints]
        batched_replies = []
        for start in range(0, len(fingerprints), 97):
            batched_replies.extend(batched.lookup_batch(fingerprints[start:start + 97]))
        assert [
            (r.is_duplicate, r.served_from, r.service_time) for r in sequential_replies
        ] == [(r.is_duplicate, r.served_from, r.service_time) for r in batched_replies]
        assert sequential.counters.as_dict() == batched.counters.as_dict()
        assert len(sequential) == len(batched)

    def test_batch_matches_sequential_with_collision_heavy_bloom(self):
        # A near-saturated bloom filter makes inserts flip other digests'
        # probe bits constantly, the case where a stale prefetched negative
        # would make the batch path diverge (wrong tier counters / service
        # times) from the sequential path.
        import random

        rng = random.Random(7)
        fingerprints = [synthetic_fingerprint(rng.randrange(400)) for _ in range(1200)]
        sequential = make_node(bloom_expected_items=40)  # tiny: fills immediately
        batched = make_node(bloom_expected_items=40)
        sequential_replies = [sequential.lookup(fp) for fp in fingerprints]
        batched_replies = []
        for start in range(0, len(fingerprints), 128):
            batched_replies.extend(batched.lookup_batch(fingerprints[start:start + 128]))
        assert [
            (r.is_duplicate, r.served_from, r.service_time) for r in sequential_replies
        ] == [(r.is_duplicate, r.served_from, r.service_time) for r in batched_replies]
        assert sequential.counters.as_dict() == batched.counters.as_dict()
        # The scenario is only meaningful if false positives actually occur.
        assert batched.counters.get("bloom_false_positives") > 0

    def test_batch_with_intra_batch_duplicates(self):
        node = make_node()
        fingerprint = synthetic_fingerprint(1)
        replies = node.lookup_batch([fingerprint, fingerprint, fingerprint])
        assert [r.is_duplicate for r in replies] == [False, True, True]
        assert replies[0].served_from is ServedFrom.NEW
        assert replies[1].served_from is ServedFrom.RAM

    def test_empty_batch(self):
        node = make_node()
        assert node.lookup_batch([]) == []
        assert node.counters.get("lookups") == 0


class TestImportExport:
    def test_export_import_roundtrip(self):
        source = make_node()
        for index in range(25):
            source.lookup(synthetic_fingerprint(index))
        target = make_node()
        added = target.import_entries(source.export_entries())
        assert added == 25
        assert len(target) == 25
        for index in range(25):
            assert synthetic_fingerprint(index) in target

    def test_import_is_idempotent(self):
        node = make_node()
        node.lookup(synthetic_fingerprint(1))
        entries = node.export_entries()
        assert node.import_entries(entries) == 0

    def test_imported_entries_pass_bloom_filter(self):
        source = make_node()
        source.lookup(synthetic_fingerprint(7))
        target = make_node()
        target.import_entries(source.export_entries())
        reply = target.lookup(synthetic_fingerprint(7))
        assert reply.is_duplicate is True

    def test_remove_entry(self):
        node = make_node()
        fingerprint = synthetic_fingerprint(3)
        node.lookup(fingerprint)
        assert node.remove_entry(fingerprint.digest) is True
        assert node.remove_entry(fingerprint.digest) is False
        assert fingerprint not in node


class TestSimulatedServing:
    def test_serve_batch_requires_simulator(self):
        node = make_node()
        with pytest.raises(RuntimeError):
            node.serve_batch(BatchLookupRequest([synthetic_fingerprint(1)]))

    def test_serve_batch_returns_replies_after_service_time(self, sim):
        node = make_node(sim)
        request = BatchLookupRequest([synthetic_fingerprint(i) for i in range(16)])
        results = []
        node.serve_batch(request).add_callback(lambda e: results.append((sim.now, e.value)))
        sim.run()
        finish_time, reply = results[0]
        assert len(reply.replies) == 16
        assert reply.node_id == "node-0"
        # At least the per-request plus per-fingerprint CPU time must elapse.
        expected_cpu = node.config.cpu_per_request + 16 * node.config.cpu_per_lookup
        assert finish_time >= expected_cpu

    def test_serve_batches_queue_on_cpu(self, sim):
        node = make_node(sim)
        finish_times = []
        for batch_index in range(3):
            request = BatchLookupRequest(
                [synthetic_fingerprint(batch_index * 100 + i) for i in range(10)]
            )
            node.serve_batch(request).add_callback(lambda _e: finish_times.append(sim.now))
        sim.run()
        assert finish_times == sorted(finish_times)
        # With service_concurrency=1, batches must not all finish together.
        assert finish_times[2] > finish_times[0]

    def test_simulated_and_immediate_agree_on_verdicts(self, sim):
        fingerprints = [synthetic_fingerprint(i % 6) for i in range(24)]
        immediate_node = make_node()
        immediate = [r.is_duplicate for r in immediate_node.lookup_batch(fingerprints)]

        simulated_node = make_node(sim)
        collected = []
        simulated_node.serve_batch(BatchLookupRequest(fingerprints)).add_callback(
            lambda e: collected.extend(r.is_duplicate for r in e.value.replies)
        )
        sim.run()
        assert collected == immediate
