"""Differential suite for the vectorized data plane (PR 9).

Every packed/fused fast path must be byte-identical to the scalar oracle
it replaced, which stays in the tree precisely so these tests can compare
against it:

* bloom ``add_many``/``contains_many`` over packed batch hash words vs
  ``add_many_scalar``/``contains_many_scalar``;
* cuckoo ``get_many``/``put_many``/``contains_many`` vs their scalar twins,
  on both the list backing and the packed shared-memory backing;
* the node's fused batch kernel (``serve_bucket_batch`` /
  ``serve_digest_batch``) vs the scalar ``serve_bucket`` loop -- replies,
  float service times, counters, store stats, and bloom bits;
* shared-memory segment lifecycle (create/attach/close/unlink, geometry
  validation, leaked-segment cleanup);
* the packed trace cache vs running the generator directly.

Plus the PR's three named satellite regression tests (fill_ratio big-int
materialization, restore_payload repeated growth, union double-counting).

PR 10 adds the columnar (numpy) backend on top: every ``*_np`` kernel and
the columnar fused node family are held to the same standard -- verdicts,
counters, and bit state identical to the scalar oracles -- and the forced
no-numpy leg (``REPRO_FORCE_NO_NUMPY=1``, subprocess) pins the fallback.
"""

from __future__ import annotations

import os
import random
import subprocess
import sys
import textwrap
import tracemalloc
from pathlib import Path

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.config import HashNodeConfig
from repro.core.digest_batch import DigestBatch
from repro.core.hash_node import HybridHashNode
from repro.dedup.fingerprint import Fingerprint
from repro.storage import npy as npy_backend
from repro.storage.bloom import BloomFilter
from repro.storage.cuckoo import CuckooHashTable
from repro.storage.packing import digest_hash_words, digest_hash_words_np
from repro.storage.shm import (
    SharedBuffer,
    shared_memory_available,
    unlink_segment,
)
from repro.workloads import trace_cache
from repro.workloads.profiles import TABLE_I_PROFILES
from repro.workloads.traces import TraceGenerator

FAST = settings(max_examples=40, deadline=None)
SLOWER = settings(max_examples=15, deadline=None)

digests = st.binary(min_size=20, max_size=20)
digest_lists = st.lists(digests, min_size=1, max_size=80)
geometries = st.tuples(st.integers(64, 4096), st.integers(1, 8))
# Shapes past the unroll bound must fall back to the scalar loop and still
# agree with it.
wide_geometries = st.tuples(st.integers(64, 1024), st.integers(17, 20))

needs_shm = pytest.mark.skipif(
    not shared_memory_available(), reason="multiprocessing.shared_memory unavailable"
)
needs_numpy = pytest.mark.skipif(
    not npy_backend.HAVE_NUMPY, reason="numpy unavailable (install the 'perf' extra)"
)


def _with_duplicates(keys):
    """Guarantee in-batch duplicates (the kernels must handle them)."""
    return keys + keys[: max(1, len(keys) // 2)]


# --------------------------------------------------------------------------- bloom
class TestBloomPackedDifferential:
    @FAST
    @given(geometries, digest_lists)
    def test_add_and_contains_match_scalar_oracle(self, geometry, keys):
        num_bits, num_hashes = geometry
        keys = _with_duplicates(keys)
        packed = BloomFilter(num_bits=num_bits, num_hashes=num_hashes)
        scalar = BloomFilter(num_bits=num_bits, num_hashes=num_hashes)
        packed.add_many(keys)
        scalar.add_many_scalar(keys)
        assert bytes(packed.raw_bits()) == bytes(scalar.raw_bits())
        assert packed.count == scalar.count
        probes = keys + [os.urandom(20) for _ in range(16)]
        assert packed.contains_many(probes) == scalar.contains_many_scalar(probes)

    @SLOWER
    @given(wide_geometries, digest_lists)
    def test_wide_shapes_fall_back_and_agree(self, geometry, keys):
        num_bits, num_hashes = geometry
        packed = BloomFilter(num_bits=num_bits, num_hashes=num_hashes)
        scalar = BloomFilter(num_bits=num_bits, num_hashes=num_hashes)
        packed.add_many(keys)
        scalar.add_many_scalar(keys)
        assert bytes(packed.raw_bits()) == bytes(scalar.raw_bits())
        assert packed.contains_many(keys) == scalar.contains_many_scalar(keys)

    @FAST
    @given(digest_lists)
    def test_digest_batch_and_blob_paths_match_lists(self, keys):
        from_list = BloomFilter(num_bits=2048, num_hashes=5)
        from_batch = BloomFilter(num_bits=2048, num_hashes=5)
        batch = DigestBatch.from_blob(b"".join(keys), 4096)
        from_list.add_many(keys)
        from_batch.add_many(batch)
        assert bytes(from_list.raw_bits()) == bytes(from_batch.raw_bits())
        assert from_list.contains_many(keys) == from_batch.contains_many(batch)

    @FAST
    @given(digest_lists, digest_lists)
    def test_reuse_after_clear_matches_fresh(self, first, second):
        reused = BloomFilter(num_bits=1024, num_hashes=4)
        reused.add_many(first)
        reused.clear()
        reused.add_many(second)
        fresh = BloomFilter(num_bits=1024, num_hashes=4)
        fresh.add_many(second)
        assert bytes(reused.raw_bits()) == bytes(fresh.raw_bits())
        assert reused.count == fresh.count

    @FAST
    @given(digest_lists)
    def test_fill_ratio_matches_per_bit_reference(self, keys):
        bloom = BloomFilter(num_bits=1024, num_hashes=4)
        bloom.add_many(keys)
        reference = sum(bin(byte).count("1") for byte in bytes(bloom.raw_bits()))
        assert bloom.fill_ratio() == reference / bloom.num_bits


class TestBloomSatelliteRegressions:
    def test_fill_ratio_does_not_materialize_bigint(self):
        """Satellite (a): fill_ratio popcounts in bounded chunks.

        The pre-fix implementation converted the whole bit vector into one
        Python big-int per call; for this 2 MiB filter that is a >= 2 MiB
        allocation, while the chunked popcount stays under a few hundred
        KiB.  tracemalloc makes the difference deterministic.
        """
        bloom = BloomFilter(num_bits=1 << 24, num_hashes=4)  # 2 MiB of bits
        bloom.add_many([os.urandom(20) for _ in range(256)])
        bloom.fill_ratio()  # warm any lazy state outside the measurement
        tracemalloc.start()
        try:
            bloom.fill_ratio()
            _current, peak = tracemalloc.get_traced_memory()
        finally:
            tracemalloc.stop()
        assert peak < 1 << 20, f"fill_ratio allocated {peak} bytes peak"

    def test_fill_ratio_exact_pinned_ratios(self):
        bloom = BloomFilter(num_bits=256, num_hashes=2)
        assert bloom.fill_ratio() == 0.0
        bloom.raw_bits()[0] = 0b1011_0001  # 4 bits
        bloom.raw_bits()[31] = 0xFF  # 8 bits
        assert bloom.fill_ratio() == 12 / 256
        bloom.raw_bits()[:] = bytes([0xFF]) * 32
        assert bloom.fill_ratio() == 1.0

    def test_union_does_not_double_count_overlap(self):
        """Satellite (c): two filters holding the same 500 keys no longer
        merge to ``count == 1000``."""
        keys = [os.urandom(20) for _ in range(500)]
        left = BloomFilter(num_bits=1 << 16, num_hashes=5)
        right = BloomFilter(num_bits=1 << 16, num_hashes=5)
        left.add_many(keys)
        right.add_many(keys)
        merged = left.union(right)
        assert merged.count < 1000  # pre-fix: exactly 1000
        assert 500 <= merged.count  # clamp floor: max of the inputs

    def test_union_count_exact_when_one_side_empty(self):
        keys = [os.urandom(20) for _ in range(500)]
        filled = BloomFilter(num_bits=1 << 16, num_hashes=5)
        filled.add_many(keys)
        empty = BloomFilter(num_bits=1 << 16, num_hashes=5)
        assert filled.union(empty).count == 500
        assert empty.union(filled).count == 500

    @FAST
    @given(digest_lists, digest_lists)
    def test_union_bits_are_exact_or(self, left_keys, right_keys):
        left = BloomFilter(num_bits=1000, num_hashes=3)  # non-multiple-of-8 tail
        right = BloomFilter(num_bits=1000, num_hashes=3)
        left.add_many(left_keys)
        right.add_many(right_keys)
        merged = left.union(right)
        reference = bytes(
            a | b for a, b in zip(bytes(left.raw_bits()), bytes(right.raw_bits()))
        )
        assert bytes(merged.raw_bits()) == reference
        assert all(key in merged for key in left_keys + right_keys)


# -------------------------------------------------------------------------- cuckoo
values = st.integers(0, 2**64 - 1)
kv_lists = st.lists(st.tuples(digests, values), min_size=1, max_size=60)


class TestCuckooVectorizedDifferential:
    @FAST
    @given(kv_lists, digest_lists)
    def test_vectorized_ops_match_scalar_oracle(self, items, extra_probes):
        items = _with_duplicates(items)  # duplicate keys in one batch
        fast = CuckooHashTable(initial_buckets=8, slots_per_bucket=2)
        oracle = CuckooHashTable(initial_buckets=8, slots_per_bucket=2)
        fast.put_many(items)
        oracle.put_many_scalar(items)
        assert len(fast) == len(oracle)
        assert dict(fast.items()) == dict(oracle.items())
        probes = [key for key, _ in items] + extra_probes
        assert fast.get_many(probes, default=-1) == oracle.get_many_scalar(probes, default=-1)
        assert fast.contains_many(probes) == oracle.contains_many_scalar(probes)

    @needs_shm
    @FAST
    @given(kv_lists)
    def test_packed_backing_matches_list_backing(self, items):
        packed = CuckooHashTable(initial_buckets=8, slots_per_bucket=2, shared=True)
        try:
            plain = CuckooHashTable(initial_buckets=8, slots_per_bucket=2)
            packed.put_many(items)
            plain.put_many(items)
            assert dict(packed.items()) == dict(plain.items())
            probes = [key for key, _ in items] + [os.urandom(20) for _ in range(8)]
            assert packed.get_many(probes) == plain.get_many(probes)
            assert packed.contains_many(probes) == plain.contains_many(probes)
        finally:
            packed.unlink_shared()

    def test_packed_rejects_non_digest_entries(self):
        table = CuckooHashTable(initial_buckets=8, shared=True)
        try:
            with pytest.raises(TypeError):
                table.put(b"short", 1)
            with pytest.raises(TypeError):
                table.put(os.urandom(20), -1)
            with pytest.raises(TypeError):
                table.put(os.urandom(20), True)
        finally:
            table.unlink_shared()

    def test_restore_payload_presizes_single_resize(self):
        """Satellite (b): snapshot restore into a cold table grows at most
        once instead of replaying every doubling through ``put``."""
        source = CuckooHashTable(initial_buckets=8, slots_per_bucket=2)
        entries = {os.urandom(20): index for index in range(3000)}
        source.put_many(list(entries.items()))
        payload = source.snapshot_payload()

        cold = CuckooHashTable(initial_buckets=8, slots_per_bucket=2)
        restored = cold.restore_payload(payload)
        assert restored == len(entries)
        assert cold.resizes <= 1  # pre-fix: one resize per doubling (~8)
        assert dict(cold.items()) == entries

    @needs_shm
    def test_restore_payload_presizes_packed_backing(self):
        source = CuckooHashTable(initial_buckets=8, slots_per_bucket=2)
        entries = {os.urandom(20): index for index in range(1500)}
        source.put_many(list(entries.items()))
        payload = source.snapshot_payload()

        cold = CuckooHashTable(initial_buckets=8, slots_per_bucket=2, shared=True)
        try:
            assert cold.restore_payload(payload) == len(entries)
            assert cold.resizes <= 1
            assert dict(cold.items()) == entries
        finally:
            cold.unlink_shared()


# ------------------------------------------------------------- shared-memory lifecycle
@needs_shm
class TestSharedMemoryLifecycle:
    def test_bloom_attach_sees_writer_bits(self):
        name = f"repro-test-bloom-{os.getpid()}"
        writer = BloomFilter(num_bits=4096, num_hashes=4, shared=True, shared_name=name)
        assert writer.shared_segment_name == name
        try:
            keys = [os.urandom(20) for _ in range(64)]
            writer.add_many(keys)
            reader = BloomFilter(num_bits=4096, num_hashes=4, shared_name=name)
            try:
                assert reader.contains_many(keys) == [True] * len(keys)
                assert bytes(reader.raw_bits()) == bytes(writer.raw_bits())
            finally:
                reader.close_shared()
        finally:
            writer.unlink_shared()
        with pytest.raises(FileNotFoundError):
            BloomFilter(num_bits=4096, num_hashes=4, shared_name=name)

    def test_bloom_geometry_mismatch_raises(self):
        name = f"repro-test-geom-{os.getpid()}"
        writer = BloomFilter(num_bits=4096, num_hashes=4, shared=True, shared_name=name)
        try:
            with pytest.raises(ValueError, match="bits=4096"):
                BloomFilter(num_bits=2048, num_hashes=4, shared_name=name)
        finally:
            writer.unlink_shared()

    def test_cuckoo_attach_reads_writer_entries(self):
        name = f"repro-test-cuckoo-{os.getpid()}"
        writer = CuckooHashTable(initial_buckets=64, shared=True, shared_name=name)
        try:
            entries = {os.urandom(20): index for index in range(40)}
            writer.put_many(list(entries.items()))
            reader = CuckooHashTable(
                initial_buckets=64, shared_name=writer.shared_segment_name
            )
            try:
                assert len(reader) == len(entries)
                keys = list(entries)
                assert reader.get_many(keys) == [entries[key] for key in keys]
            finally:
                reader.close_shared()
        finally:
            writer.unlink_shared()

    def test_leaked_segment_cleanup(self):
        name = f"repro-test-leak-{os.getpid()}"
        leaked = SharedBuffer.create(128, name=name)
        assert leaked.name == name
        leaked.close()  # detached but never unlinked: the "crashed owner" case
        assert unlink_segment(name) is True
        assert unlink_segment(name) is False  # idempotent on missing segments

    def test_kill_detaches_shared_bloom_and_keeps_segment(self):
        name = f"repro-test-kill-{os.getpid()}"
        config = HashNodeConfig(bloom_expected_items=512, ssd_buckets=16)
        bloom = BloomFilter(
            expected_items=config.bloom_expected_items,
            false_positive_rate=config.bloom_false_positive_rate,
            shared=True,
            shared_name=name,
        )
        node = HybridHashNode("shm-node", config=config, bloom=bloom)
        try:
            node.lookup(Fingerprint(digest=os.urandom(20), chunk_size=4096))
            node.kill()
            assert node.bloom.shared_segment_name is None  # private replacement
        finally:
            assert unlink_segment(name) is True  # kill detached, not unlinked


# ------------------------------------------------------------------- fused node kernel
def _twin_nodes():
    config = HashNodeConfig(
        ram_cache_entries=32,
        bloom_expected_items=256,
        bloom_false_positive_rate=0.05,
        ssd_buckets=16,
        ssd_write_buffer_pages=2,
    )
    return HybridHashNode("twin", config=config), HybridHashNode("twin", config=config)


def _reply_tuple(reply):
    return (
        reply.fingerprint.digest,
        reply.is_duplicate,
        reply.served_from,
        reply.node_id,
        reply.service_time,
    )


batch_lists = st.lists(
    st.lists(st.tuples(digests, st.integers(1, 1 << 20)), min_size=1, max_size=40),
    min_size=1,
    max_size=4,
)


class TestFusedNodeKernelDifferential:
    @SLOWER
    @given(batch_lists)
    def test_serve_bucket_batch_matches_scalar_loop(self, batches):
        scalar, fused = _twin_nodes()
        for pairs in batches:
            pairs = _with_duplicates(pairs)
            fingerprints = [
                Fingerprint(digest=digest, chunk_size=size) for digest, size in pairs
            ]
            scalar_replies, scalar_new = scalar.serve_bucket(fingerprints)
            fused_replies, fused_new = fused.serve_bucket_batch(
                DigestBatch.from_fingerprints(fingerprints)
            )
            assert scalar_new == fused_new
            assert list(map(_reply_tuple, scalar_replies)) == list(
                map(_reply_tuple, fused_replies)
            )
        assert scalar.counters.as_dict() == fused.counters.as_dict()
        assert scalar.store.stats() == fused.store.stats()
        assert bytes(scalar.bloom.raw_bits()) == bytes(fused.bloom.raw_bits())
        assert scalar.bloom.count == fused.bloom.count
        assert list(scalar.cache.data) == list(fused.cache.data)
        assert (scalar.cache.hits, scalar.cache.misses) == (
            fused.cache.hits,
            fused.cache.misses,
        )

    @SLOWER
    @given(batch_lists)
    def test_serve_digest_batch_matches_scalar_loop(self, batches):
        scalar, fused = _twin_nodes()
        for pairs in batches:
            fingerprints = [
                Fingerprint(digest=digest, chunk_size=size) for digest, size in pairs
            ]
            scalar_replies, scalar_new = scalar.serve_bucket(fingerprints)
            verdicts, fused_new = fused.serve_digest_batch(
                DigestBatch.from_blob(
                    b"".join(digest for digest, _ in pairs),
                    [size for _, size in pairs],
                )
            )
            assert scalar_new == fused_new
            assert [reply.is_duplicate for reply in scalar_replies] == verdicts
        assert scalar.counters.as_dict() == fused.counters.as_dict()
        assert scalar.store.stats() == fused.store.stats()
        assert sorted(scalar.store.items()) == sorted(fused.store.items())

    def test_scalar_chunk_size_blob_matches(self):
        scalar, fused = _twin_nodes()
        rng = random.Random(7)
        digest_pool = [rng.randbytes(20) for _ in range(120)]
        for _ in range(6):
            chosen = [rng.choice(digest_pool) for _ in range(50)]
            fingerprints = [Fingerprint(digest=d, chunk_size=4096) for d in chosen]
            scalar_replies, scalar_new = scalar.serve_bucket(fingerprints)
            verdicts, fused_new = fused.serve_digest_batch(
                DigestBatch.from_blob(b"".join(chosen), 4096)
            )
            assert scalar_new == fused_new
            assert [reply.is_duplicate for reply in scalar_replies] == verdicts
        assert scalar.counters.as_dict() == fused.counters.as_dict()

    def test_non_digest_bloom_falls_back_to_scalar_path(self):
        config = HashNodeConfig(bloom_expected_items=256, ssd_buckets=16)
        node = HybridHashNode("fallback", config=config)
        node.bloom = BloomFilter(num_bits=2048, num_hashes=3, digest_keys=False)
        fingerprints = [
            Fingerprint(digest=os.urandom(20), chunk_size=4096) for _ in range(20)
        ]
        replies, new_entries = node.serve_bucket_batch(
            DigestBatch.from_fingerprints(fingerprints)
        )
        assert new_entries == 20
        assert all(not reply.is_duplicate for reply in replies)
        verdicts, _ = node.serve_digest_batch(
            DigestBatch.from_blob(
                b"".join(fp.digest for fp in fingerprints), 4096
            )
        )
        assert verdicts == [True] * 20


# --------------------------------------------------------------------- trace cache
class TestTraceCache:
    def setup_method(self):
        trace_cache.clear_memo()

    def test_generate_trace_matches_generator(self):
        profile = TABLE_I_PROFILES[0].scaled(0.001)
        reference = list(
            TraceGenerator(profile, seed=3, identity_space=profile.name).generate()
        )
        for _ in range(2):  # second call comes from the packed memo
            cached = trace_cache.generate_trace(profile, seed=3, identity_space=profile.name)
            assert [(f.digest, f.chunk_size) for f in cached] == [
                (f.digest, f.chunk_size) for f in reference
            ]

    def test_memo_returns_fresh_lists(self):
        profile = TABLE_I_PROFILES[1].scaled(0.001)
        first = trace_cache.generate_trace(profile, seed=1)
        second = trace_cache.generate_trace(profile, seed=1)
        assert first is not second
        first[0] = None  # a caller mangling its list must not poison the cache
        third = trace_cache.generate_trace(profile, seed=1)
        assert third[0] is not None and third[0].digest == second[0].digest

    @needs_shm
    def test_shared_publish_attach_and_cleanup(self):
        profile = TABLE_I_PROFILES[0].scaled(0.001)
        prefix = f"repro-test-trace-{os.getpid()}"
        published = trace_cache.generate_trace(profile, seed=9, shared_prefix=prefix)
        trace_cache.clear_memo()  # force the next call through the segment
        attached = trace_cache.generate_trace(profile, seed=9, shared_prefix=prefix)
        assert [(f.digest, f.chunk_size) for f in published] == [
            (f.digest, f.chunk_size) for f in attached
        ]
        assert trace_cache.cleanup_shared_traces(prefix) == 1
        assert trace_cache.cleanup_shared_traces(prefix) == 0


# -------------------------------------------------------- numpy columnar backend
@needs_numpy
class TestNumpyHashWordsDifferential:
    @FAST
    @given(digest_lists)
    def test_hash_words_np_match_struct_unpack(self, keys):
        blob = b"".join(keys)
        columnar = digest_hash_words_np(blob, len(keys))
        scalar = digest_hash_words(blob, len(keys))
        assert columnar.shape == (len(keys), 2)
        flat = [int(word) for row in columnar for word in row]
        assert flat == list(scalar)

    @FAST
    @given(digest_lists)
    def test_digest_batch_caches_and_matches(self, keys):
        batch = DigestBatch.from_blob(b"".join(keys), 4096)
        first = batch.hash_words_np()
        assert batch.hash_words_np() is first  # memoized per batch
        scalar = digest_hash_words(batch.packed(), len(keys))
        assert [int(w) for row in first for w in row] == list(scalar)


@needs_numpy
class TestNumpyBloomDifferential:
    @FAST
    @given(geometries, digest_lists)
    def test_add_and_contains_np_match_scalar_oracle(self, geometry, keys):
        num_bits, num_hashes = geometry
        keys = _with_duplicates(keys)
        columnar = BloomFilter(num_bits=num_bits, num_hashes=num_hashes)
        oracle = BloomFilter(num_bits=num_bits, num_hashes=num_hashes)
        columnar.add_many_np(keys)
        oracle.add_many_scalar(keys)
        assert bytes(columnar.raw_bits()) == bytes(oracle.raw_bits())
        assert columnar.count == oracle.count
        probes = keys + [os.urandom(20) for _ in range(16)]
        assert columnar.contains_many_np(probes) == oracle.contains_many_scalar(probes)

    @FAST
    @given(digest_lists)
    def test_digest_batch_path_matches_list_path(self, keys):
        batch = DigestBatch.from_blob(b"".join(keys), 4096)
        from_batch = BloomFilter(num_bits=2048, num_hashes=5)
        from_list = BloomFilter(num_bits=2048, num_hashes=5)
        from_batch.add_many_np(batch)
        from_list.add_many_scalar(keys)
        assert bytes(from_batch.raw_bits()) == bytes(from_list.raw_bits())
        assert from_batch.contains_many_np(batch) == from_list.contains_many_scalar(keys)

    @needs_shm
    @SLOWER
    @given(digest_lists)
    def test_shm_backed_bits_match_scalar(self, keys):
        # The scatter targets the shared segment through a zero-copy numpy
        # view; the private scalar twin must end with the same bytes.
        shared = BloomFilter(num_bits=4096, num_hashes=4, shared=True)
        try:
            oracle = BloomFilter(num_bits=4096, num_hashes=4)
            shared.add_many_np(keys)
            oracle.add_many_scalar(keys)
            assert bytes(shared.raw_bits()) == bytes(oracle.raw_bits())
            probes = keys + [os.urandom(20) for _ in range(8)]
            assert shared.contains_many_np(probes) == oracle.contains_many_scalar(probes)
        finally:
            shared.unlink_shared()  # must not BufferError on the cached view

    def test_public_routing_goes_columnar_at_min_batch_1(self, monkeypatch):
        import repro.storage.bloom as bloom_mod

        monkeypatch.setattr(bloom_mod, "NUMPY_MIN_BATCH", 1)
        keys = [os.urandom(20) for _ in range(10)]
        routed = BloomFilter(num_bits=2048, num_hashes=4)
        oracle = BloomFilter(num_bits=2048, num_hashes=4)
        routed.add_many(keys)  # 10 >= 1: the public router takes the numpy path
        oracle.add_many_scalar(keys)
        assert bytes(routed.raw_bits()) == bytes(oracle.raw_bits())
        assert routed.contains_many(keys) == oracle.contains_many_scalar(keys)

    def test_non_digest_filter_falls_back_cleanly(self):
        bloom = BloomFilter(num_bits=1024, num_hashes=3, digest_keys=False)
        assert not bloom.columnar_eligible
        bloom.add_many_np([b"short", b"keys"])  # falls back to the packed path
        assert bloom.contains_many_np([b"short", b"nope"]) == [True, False]


@needs_numpy
class TestNumpyCuckooDifferential:
    @needs_shm
    @FAST
    @given(kv_lists, digest_lists)
    def test_get_and_contains_np_match_scalar(self, items, extra_probes):
        items = _with_duplicates(items)
        table = CuckooHashTable(initial_buckets=8, slots_per_bucket=2, shared=True)
        try:
            table.put_many(items)
            probes = [key for key, _ in items] + extra_probes
            assert table.get_many_np(probes, default=-1) == table.get_many_scalar(
                probes, default=-1
            )
            assert table.contains_many_np(probes) == table.contains_many_scalar(probes)
        finally:
            table.unlink_shared()

    @needs_shm
    def test_digest_batch_probes_match_list_probes(self):
        rng = random.Random(11)
        table = CuckooHashTable(initial_buckets=8, slots_per_bucket=2, shared=True)
        try:
            entries = [(rng.randbytes(20), index) for index in range(200)]
            table.put_many(entries)
            probes = [key for key, _ in entries[::2]] + [rng.randbytes(20) for _ in range(40)]
            batch = DigestBatch.from_blob(b"".join(probes), 4096)
            assert table.get_many_np(batch) == table.get_many_scalar(probes)
            assert table.contains_many_np(batch) == table.contains_many_scalar(probes)
        finally:
            table.unlink_shared()

    def test_list_backing_falls_back_and_agrees(self):
        # No packed buffer behind a private table: get_many_np must detect
        # that and still answer (via the routed scalar path).
        table = CuckooHashTable(initial_buckets=8, slots_per_bucket=2)
        entries = [(os.urandom(20), index) for index in range(64)]
        table.put_many(entries)
        probes = [key for key, _ in entries] + [os.urandom(20) for _ in range(8)]
        assert table.get_many_np(probes, default=-7) == table.get_many_scalar(
            probes, default=-7
        )
        assert table.contains_many_np(probes) == table.contains_many_scalar(probes)


@needs_numpy
class TestColumnarFusedKernelDifferential:
    """The columnar fused family vs the scalar ``serve_bucket`` loop.

    ``NUMPY_MIN_BATCH`` is pinned to 1 inside the test so every batch --
    including single-key ones -- takes the columnar bloom-prefetch path;
    the dirty-flag protocol must keep verdicts, counters, bloom bits, and
    cache state byte-identical to the per-key loop.
    """

    def _force_columnar(self):
        import repro.core.hash_node as hash_node_mod

        original = hash_node_mod.NUMPY_MIN_BATCH
        hash_node_mod.NUMPY_MIN_BATCH = 1
        return hash_node_mod, original

    @SLOWER
    @given(batch_lists)
    def test_columnar_serve_bucket_batch_matches_scalar_loop(self, batches):
        hash_node_mod, original = self._force_columnar()
        try:
            scalar, columnar = _twin_nodes()
            assert columnar.kernel_backend == "numpy"
            for pairs in batches:
                pairs = _with_duplicates(pairs)
                fingerprints = [
                    Fingerprint(digest=digest, chunk_size=size) for digest, size in pairs
                ]
                scalar_replies, scalar_new = scalar.serve_bucket(fingerprints)
                columnar_replies, columnar_new = columnar.serve_bucket_batch(
                    DigestBatch.from_fingerprints(fingerprints)
                )
                assert scalar_new == columnar_new
                assert list(map(_reply_tuple, scalar_replies)) == list(
                    map(_reply_tuple, columnar_replies)
                )
            assert scalar.counters.as_dict() == columnar.counters.as_dict()
            assert scalar.store.stats() == columnar.store.stats()
            assert bytes(scalar.bloom.raw_bits()) == bytes(columnar.bloom.raw_bits())
            assert scalar.bloom.count == columnar.bloom.count
            assert list(scalar.cache.data) == list(columnar.cache.data)
        finally:
            hash_node_mod.NUMPY_MIN_BATCH = original

    @SLOWER
    @given(batch_lists)
    def test_columnar_serve_digest_batch_matches_scalar_loop(self, batches):
        hash_node_mod, original = self._force_columnar()
        try:
            scalar, columnar = _twin_nodes()
            for pairs in batches:
                fingerprints = [
                    Fingerprint(digest=digest, chunk_size=size) for digest, size in pairs
                ]
                scalar_replies, scalar_new = scalar.serve_bucket(fingerprints)
                verdicts, columnar_new = columnar.serve_digest_batch(
                    DigestBatch.from_blob(
                        b"".join(digest for digest, _ in pairs),
                        [size for _, size in pairs],
                    )
                )
                assert scalar_new == columnar_new
                assert [reply.is_duplicate for reply in scalar_replies] == verdicts
            assert scalar.counters.as_dict() == columnar.counters.as_dict()
            assert scalar.store.stats() == columnar.store.stats()
            assert sorted(scalar.store.items()) == sorted(columnar.store.items())
        finally:
            hash_node_mod.NUMPY_MIN_BATCH = original

    def test_default_crossover_keeps_small_batches_scalar(self):
        # Below REPRO_NUMPY_MIN_BATCH the serve methods must not pay the
        # columnar setup; the packed per-key family answers instead.  The
        # result is identical either way -- this pins the routing itself.
        node, _ = _twin_nodes()
        assert node.kernel_backend == "numpy"
        small = [Fingerprint(digest=os.urandom(20), chunk_size=4096) for _ in range(4)]
        replies, new_entries = node.serve_bucket_batch(DigestBatch.from_fingerprints(small))
        assert new_entries == 4
        assert [reply.is_duplicate for reply in replies] == [False] * 4


def test_worker_stats_report_kernel_backend():
    # The /stats payload must carry the backend either way; which value it
    # is depends on whether numpy imported in this process.
    from repro.serving.worker import _stats

    node = HybridHashNode(
        "stats", config=HashNodeConfig(bloom_expected_items=512, ssd_buckets=16)
    )
    payload = _stats(node)
    assert payload["kernel_backend"] == node.kernel_backend
    assert payload["kernel_backend"] in ("numpy", "python-packed")


class TestForcedNoNumpyFallback:
    """Satellite: the pure-Python leg, exercised in a real subprocess.

    ``REPRO_FORCE_NO_NUMPY=1`` is read at import time, so the only honest
    way to test the fallback with numpy installed is a fresh interpreter.
    The child proves the backend reports ``python-packed``, the ``*_np``
    entry points fall back bit-identically, and the serving gateway boots
    and answers stats with the fallback backend name.
    """

    REPO_ROOT = Path(__file__).resolve().parents[1]

    def _run_child(self, script: str) -> None:
        env = dict(os.environ)
        env["REPRO_FORCE_NO_NUMPY"] = "1"
        env["PYTHONPATH"] = str(self.REPO_ROOT / "src")
        result = subprocess.run(
            [sys.executable, "-c", textwrap.dedent(script)],
            cwd=str(self.REPO_ROOT),
            env=env,
            capture_output=True,
            text=True,
            timeout=120,
        )
        assert result.returncode == 0, (
            f"no-numpy child failed\nstdout:\n{result.stdout}\nstderr:\n{result.stderr}"
        )

    def test_backend_and_kernels_fall_back_bit_identically(self):
        self._run_child(
            """
            import os

            from repro.storage import npy
            from repro.storage.bloom import BloomFilter
            from repro.storage.cuckoo import CuckooHashTable
            from repro.core.config import HashNodeConfig
            from repro.core.digest_batch import DigestBatch
            from repro.core.hash_node import HybridHashNode

            assert npy.np is None and not npy.HAVE_NUMPY
            assert npy.backend_name() == "python-packed"

            keys = [os.urandom(20) for _ in range(200)]
            routed = BloomFilter(num_bits=4096, num_hashes=4)
            oracle = BloomFilter(num_bits=4096, num_hashes=4)
            routed.add_many_np(keys)  # explicit entry point must fall back
            oracle.add_many_scalar(keys)
            assert bytes(routed.raw_bits()) == bytes(oracle.raw_bits())
            probes = keys + [os.urandom(20) for _ in range(32)]
            assert routed.contains_many_np(probes) == oracle.contains_many_scalar(probes)
            assert not routed.columnar_eligible

            table = CuckooHashTable(initial_buckets=8, slots_per_bucket=2)
            entries = [(os.urandom(20), index) for index in range(64)]
            table.put_many(entries)
            lookup = [key for key, _ in entries] + [os.urandom(20) for _ in range(8)]
            assert table.get_many_np(lookup, default=-1) == table.get_many_scalar(
                lookup, default=-1
            )

            node = HybridHashNode(
                "no-numpy", config=HashNodeConfig(bloom_expected_items=512, ssd_buckets=16)
            )
            assert node.kernel_backend == "python-packed"
            from repro.serving.worker import _stats
            assert _stats(node)["kernel_backend"] == "python-packed"
            digests = [os.urandom(20) for _ in range(100)]
            verdicts, new_entries = node.serve_digest_batch(
                DigestBatch.from_blob(b"".join(digests), 4096)
            )
            assert new_entries == 100 and verdicts == [False] * 100
            again, _ = node.serve_digest_batch(
                DigestBatch.from_blob(b"".join(digests), 4096)
            )
            assert again == [True] * 100  # every key is now a duplicate
            print("no-numpy kernels ok")
            """
        )

    def test_serve_stack_boots_without_numpy(self):
        self._run_child(
            """
            import asyncio

            from repro.serving.gateway import ServeConfig, ServiceGateway

            async def go():
                gateway = ServiceGateway(
                    ServeConfig(
                        port=0,
                        num_nodes=2,
                        node_config={"bloom_expected_items": 10_000},
                    )
                )
                await gateway.start()
                try:
                    stats = gateway.stats()
                    workers = stats["workers"]
                    assert len(workers) == 2
                finally:
                    await gateway.close()

            asyncio.run(go())
            print("no-numpy serve ok")
            """
        )
