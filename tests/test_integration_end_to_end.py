"""End-to-end integration tests across the whole stack."""

from __future__ import annotations

import os
import random

import pytest

from repro.core.cluster import SHHCCluster
from repro.core.config import ClusterConfig, HashNodeConfig
from repro.core.membership import MembershipManager
from repro.dedup.chunking import ContentDefinedChunker
from repro.dedup.pipeline import DedupPipeline
from repro.frontend.client import SimulatedClient
from repro.frontend.gateway import BackupService, build_simulated_service
from repro.simulation.engine import Simulator
from repro.storage.object_store import CloudObjectStore
from repro.workloads.mixer import table_i_mix
from repro.workloads.traces import TraceGenerator
from repro.workloads.profiles import WEB_SERVER


def small_config(num_nodes=4, replication=1) -> ClusterConfig:
    return ClusterConfig(
        num_nodes=num_nodes,
        node=HashNodeConfig(ram_cache_entries=2048, bloom_expected_items=100_000, ssd_buckets=1 << 11),
        replication_factor=replication,
    )


class TestLibraryEndToEnd:
    def test_cluster_as_index_for_the_dedup_pipeline(self):
        """SHHC drops into the pipeline in place of a centralized index."""
        cluster = SHHCCluster(small_config())
        pipeline = DedupPipeline(cluster, CloudObjectStore(), ContentDefinedChunker(average_size=1024))
        # Seeded data: with ~60 chunks over 4 nodes, the balance assertion
        # below is noisy under os.urandom and flakes around the threshold.
        rng = random.Random(42)
        base = rng.randbytes(60_000)
        pipeline.backup("monday", base)
        # Tuesday's backup: same data with a small edit in the middle.
        edited = base[:30_000] + rng.randbytes(200) + base[30_200:]
        pipeline.backup("tuesday", edited)
        assert pipeline.restore("monday") == base
        assert pipeline.restore("tuesday") == edited
        # The second backup should reuse most chunks.
        assert pipeline.stats.dedup_ratio > 1.6
        # The cluster spread the fingerprints over all four nodes.
        assert cluster.storage_distribution().max_over_mean < 1.6

    def test_backup_service_full_week_cycle(self):
        service = BackupService(small_config(), num_web_servers=2, batch_size=64)
        base = os.urandom(8192 * 16)
        total_upload = 0
        for day in range(5):
            # Each day one quarter of the data changes (cycling through the
            # four quarters).
            changed = bytearray(base)
            start = (day % 4) * 8192 * 4
            changed[start:start + 8192 * 4] = os.urandom(8192 * 4)
            plan = service.backup("laptop-1", bytes(changed))
            total_upload += plan.upload_bytes
        # Five full backups of 128 KiB each, but far less actually uploaded.
        logical = 5 * len(base)
        assert total_upload < logical * 0.6
        stats = service.stats()
        assert stats["cluster"]["lookups"] == 5 * 16

    def test_membership_change_with_live_data(self):
        cluster = SHHCCluster(small_config())
        trace = TraceGenerator(WEB_SERVER.scaled(0.001), seed=2).materialize()
        cluster.lookup_batch(trace.fingerprints)
        entries_before = len(cluster)
        MembershipManager(cluster).add_node("hashnode-4")
        assert len(cluster) == entries_before
        # Replaying the same trace must see every fingerprint as a duplicate.
        replay = cluster.lookup_batch(trace.fingerprints)
        assert all(result.is_duplicate for result in replay)


class TestSimulatedDeploymentEndToEnd:
    def test_mixed_workload_replay_through_full_stack(self):
        sim = Simulator()
        deployment = build_simulated_service(sim, small_config(), num_clients=2, num_web_servers=2)
        shares = table_i_mix(seed=5).split_among_clients(2, scale=0.0001)
        clients = [
            SimulatedClient(
                f"client-{index}",
                deployment.network.rpc,
                deployment.load_balancer,
                share,
                batch_size=128,
                sim=sim,
            )
            for index, share in enumerate(shares)
        ]
        for client in clients:
            client.start()
        sim.run()

        total_sent = sum(client.stats.fingerprints_sent for client in clients)
        assert total_sent == sum(len(share) for share in shares)
        metrics = deployment.cluster.metrics()
        # Every fingerprint the clients sent was looked up exactly once.
        assert metrics.total_lookups == total_sent
        # Duplicate ratio should be in the ballpark of the mixed workloads'
        # overall redundancy (the mix is dominated by the mail trace).
        assert 0.3 < metrics.duplicate_ratio() < 0.9
        # The web tier balanced requests over both web servers.
        assignments = deployment.load_balancer.assignments()
        assert all(count > 0 for count in assignments.values())
        # And the hash cluster balanced storage over its nodes.
        assert deployment.cluster.storage_distribution().max_deviation_from_even() < 0.1

    def test_simulated_and_immediate_cluster_agree(self):
        """The simulated deployment must produce the same dedup verdicts as
        the plain library cluster on the same trace."""
        trace = TraceGenerator(WEB_SERVER.scaled(0.0005), seed=9).materialize()

        immediate = SHHCCluster(small_config(num_nodes=2))
        immediate_verdicts = [r.is_duplicate for r in immediate.lookup_batch(trace.fingerprints)]

        sim = Simulator()
        deployment = build_simulated_service(sim, small_config(num_nodes=2), 1, 1)
        client = SimulatedClient(
            "client-0",
            deployment.network.rpc,
            deployment.load_balancer,
            trace.fingerprints,
            batch_size=256,
            sim=sim,
        )
        client.start()
        sim.run()
        assert client.stats.duplicates_found == sum(immediate_verdicts)
        assert len(deployment.cluster) == len(immediate)

    def test_throughput_scales_with_cluster_size(self):
        """The headline claim: more hash nodes, more throughput (batched)."""
        trace = table_i_mix(seed=1).interleaved(scale=0.00005)
        throughputs = {}
        for num_nodes in (1, 4):
            sim = Simulator()
            deployment = build_simulated_service(sim, small_config(num_nodes=num_nodes), 1, 1)
            client = SimulatedClient(
                "client-0",
                deployment.network.rpc,
                deployment.load_balancer,
                trace,
                batch_size=128,
                sim=sim,
            )
            client.start()
            sim.run()
            throughputs[num_nodes] = client.stats.throughput
        assert throughputs[4] > throughputs[1] * 1.5
