"""Tests for the cuckoo hash table and the SSD/file hash stores."""

from __future__ import annotations

import os

import pytest

from repro.storage.cuckoo import CuckooHashTable
from repro.storage.hashstore import FileHashStore, IOOperation, SSDHashStore


class TestCuckooHashTable:
    def test_put_get_roundtrip(self):
        table = CuckooHashTable(initial_buckets=16)
        table.put(b"key", 123)
        assert table.get(b"key") == 123
        assert b"key" in table
        assert len(table) == 1

    def test_get_missing_returns_default(self):
        table = CuckooHashTable()
        assert table.get(b"missing") is None
        assert table.get(b"missing", "fallback") == "fallback"
        assert b"missing" not in table

    def test_update_in_place_does_not_grow_size(self):
        table = CuckooHashTable()
        table.put(b"key", 1)
        table.put(b"key", 2)
        assert len(table) == 1
        assert table.get(b"key") == 2

    def test_remove(self):
        table = CuckooHashTable()
        table.put(b"key", 1)
        assert table.remove(b"key") is True
        assert table.remove(b"key") is False
        assert len(table) == 0

    def test_many_inserts_with_growth(self):
        table = CuckooHashTable(initial_buckets=8, slots_per_bucket=2)
        items = {f"key-{i}".encode(): i for i in range(5000)}
        for key, value in items.items():
            table.put(key, value)
        assert len(table) == 5000
        assert table.resizes > 0
        for key, value in items.items():
            assert table.get(key) == value

    def test_items_and_keys_cover_everything(self):
        table = CuckooHashTable(initial_buckets=16)
        keys = {f"k{i}".encode() for i in range(200)}
        for key in keys:
            table.put(key, True)
        assert set(table.keys()) == keys
        assert {k for k, _v in table.items()} == keys

    def test_load_factor_bounded(self):
        table = CuckooHashTable(initial_buckets=8, slots_per_bucket=4)
        for i in range(1000):
            table.put(f"k{i}".encode(), i)
        assert 0.0 < table.load_factor() <= 1.0

    def test_validation(self):
        with pytest.raises(ValueError):
            CuckooHashTable(initial_buckets=0)
        with pytest.raises(ValueError):
            CuckooHashTable(slots_per_bucket=0)

    def test_string_keys_accepted(self):
        table = CuckooHashTable()
        table.put("string-key", "value")
        assert table.get("string-key") == "value"


class TestCuckooDigestFastPath:
    @staticmethod
    def _digests(start: int, count: int) -> list:
        import hashlib

        return [
            hashlib.sha1(index.to_bytes(8, "big")).digest()
            for index in range(start, start + count)
        ]

    def test_digest_and_hashed_paths_agree(self):
        """Same op sequence through both key-derivation modes: same answers."""
        import random

        rng = random.Random(9)
        keys = self._digests(0, 1500)
        fast = CuckooHashTable(initial_buckets=64, digest_keys=True)
        hashed = CuckooHashTable(initial_buckets=64, digest_keys=False)
        live = {}
        for step in range(4000):
            key = rng.choice(keys)
            op = rng.random()
            if op < 0.6:
                fast.put(key, step)
                hashed.put(key, step)
                live[key] = step
            elif op < 0.8:
                assert fast.get(key) == hashed.get(key) == live.get(key)
            else:
                assert fast.remove(key) == hashed.remove(key) == (live.pop(key, None) is not None)
        assert len(fast) == len(hashed) == len(live)
        for key in keys:
            assert fast.get(key) == hashed.get(key) == live.get(key)

    def test_get_many_matches_scalar_get(self):
        table = CuckooHashTable(initial_buckets=64)
        keys = self._digests(0, 800)
        for index, key in enumerate(keys):
            table.put(key, index)
        probes = keys + self._digests(100_000, 200)
        assert table.get_many(probes) == [table.get(key) for key in probes]
        assert table.contains_many(probes) == [key in table for key in probes]

    def test_get_many_honours_default(self):
        table = CuckooHashTable(initial_buckets=16)
        missing = self._digests(0, 3)
        assert table.get_many(missing, default=-1) == [-1, -1, -1]

    def test_put_many_equivalent_to_puts(self):
        a = CuckooHashTable(initial_buckets=64)
        b = CuckooHashTable(initial_buckets=64)
        items = [(key, index) for index, key in enumerate(self._digests(0, 500))]
        for key, value in items:
            a.put(key, value)
        b.put_many(items)
        assert len(a) == len(b)
        assert dict(a.items()) == dict(b.items())

    def test_digest_path_survives_growth(self):
        table = CuckooHashTable(initial_buckets=4, slots_per_bucket=2)
        keys = self._digests(0, 2000)
        for index, key in enumerate(keys):
            table.put(key, index)
        assert table.resizes > 0
        assert all(table.get(key) == index for index, key in enumerate(keys))

    def test_short_keys_fall_back_to_hashing(self):
        table = CuckooHashTable(initial_buckets=16, digest_keys=True)
        table.put(b"short", 1)
        assert table.get(b"short") == 1
        assert b"short" in table


class TestSSDHashStore:
    def test_put_get_contains(self):
        store = SSDHashStore(num_buckets=64)
        assert store.put(b"a" * 20, 8192) is True
        assert store.put(b"a" * 20, 8192) is False  # already present
        assert store.get(b"a" * 20) == 8192
        assert (b"a" * 20) in store
        assert len(store) == 1

    def test_remove(self):
        store = SSDHashStore(num_buckets=64)
        store.put(b"x", 1)
        assert store.remove(b"x") is True
        assert store.remove(b"x") is False
        assert len(store) == 0

    def test_items_iterates_everything(self):
        store = SSDHashStore(num_buckets=16)
        keys = {os.urandom(20) for _ in range(300)}
        for key in keys:
            store.put(key, True)
        assert {k for k, _v in store.items()} == keys
        assert set(store.keys()) == keys

    def test_bucket_of_is_stable_and_in_range(self):
        store = SSDHashStore(num_buckets=128)
        key = os.urandom(20)
        assert store.bucket_of(key) == store.bucket_of(key)
        assert 0 <= store.bucket_of(key) < 128

    def test_lookup_io_is_single_page_when_not_overflowing(self):
        store = SSDHashStore(num_buckets=1 << 12, page_size=4096, entry_size=48)
        key = os.urandom(20)
        store.put(key, True)
        operations = store.lookup_io(key)
        assert len(operations) == 1
        assert operations[0] == IOOperation("read", 4096)

    def test_lookup_io_grows_with_overflowing_bucket(self):
        store = SSDHashStore(num_buckets=1, page_size=256, entry_size=64)
        for i in range(20):  # 20 entries, 4 per page -> 5 pages
            store.put(os.urandom(20), i)
        assert len(store.lookup_io(os.urandom(20))) == 5

    def test_insert_io_amortises_writes(self):
        store = SSDHashStore(num_buckets=64, page_size=4096, entry_size=64)
        writes = []
        for i in range(200):
            key = os.urandom(20)
            store.put(key, True)
            writes.extend(store.insert_io(key))
        # 200 inserts at 64 entries per page -> about 3 page writes.
        assert 2 <= len(writes) <= 5
        assert all(op.kind == "write" for op in writes)

    def test_insert_io_immediate_mode(self):
        store = SSDHashStore(num_buckets=64, write_buffer_pages=0)
        key = os.urandom(20)
        store.put(key, True)
        operations = store.insert_io(key)
        assert len(operations) == 1 and operations[0].kind == "write"

    def test_flush_io_drains_buffer(self):
        store = SSDHashStore(num_buckets=64, page_size=4096, entry_size=64)
        for _ in range(10):
            store.put(os.urandom(20), True)
        flush_ops = store.flush_io()
        assert len(flush_ops) == 1
        assert store.flush_io() == []

    def test_stats_keys(self):
        store = SSDHashStore(num_buckets=64)
        store.put(b"k", 1)
        assert set(store.stats()) >= {"entries", "buckets", "page_reads", "page_writes"}

    def test_validation(self):
        with pytest.raises(ValueError):
            SSDHashStore(num_buckets=0)
        with pytest.raises(ValueError):
            SSDHashStore(page_size=16, entry_size=64)
        with pytest.raises(ValueError):
            IOOperation("bogus", 4096)
        with pytest.raises(ValueError):
            IOOperation("read", 0)


class TestFileHashStore:
    def test_put_get_roundtrip(self, tmp_path):
        path = str(tmp_path / "store.log")
        with FileHashStore(path) as store:
            store.put(b"key", b"value")
            assert store.get(b"key") == b"value"
            assert b"key" in store
            assert len(store) == 1

    def test_persistence_across_reopen(self, tmp_path):
        path = str(tmp_path / "store.log")
        with FileHashStore(path) as store:
            store.put(b"alpha", b"1")
            store.put(b"beta", b"2")
            store.delete(b"alpha")
        with FileHashStore(path) as reopened:
            assert reopened.get(b"alpha") is None
            assert reopened.get(b"beta") == b"2"
            assert len(reopened) == 1

    def test_overwrite_keeps_latest_value(self, tmp_path):
        path = str(tmp_path / "store.log")
        with FileHashStore(path) as store:
            store.put(b"key", b"old")
            store.put(b"key", b"new")
        with FileHashStore(path) as reopened:
            assert reopened.get(b"key") == b"new"

    def test_truncated_tail_record_ignored(self, tmp_path):
        path = str(tmp_path / "store.log")
        with FileHashStore(path) as store:
            store.put(b"good", b"value")
        clean_size = os.path.getsize(path)
        with open(path, "ab") as log:
            log.write(b"\x01\x00\x00")  # garbage partial record
        with FileHashStore(path) as reopened:
            assert reopened.get(b"good") == b"value"
            assert len(reopened) == 1
            # Recovery truncates the torn tail back to the record boundary.
            assert reopened.truncated_bytes == 3
            assert os.path.getsize(path) == clean_size
            # Appends after recovery land on the clean boundary and survive.
            reopened.put(b"after", b"crash")
        with FileHashStore(path) as again:
            assert again.get(b"after") == b"crash"
            assert again.truncated_bytes == 0

    def test_corrupt_record_body_truncates_from_there(self, tmp_path):
        path = str(tmp_path / "store.log")
        with FileHashStore(path) as store:
            store.put(b"first", b"ok")
        first_size = os.path.getsize(path)
        with FileHashStore(path) as store:
            store.put(b"second", b"bitrot-target")
            store.put(b"third", b"after-corruption")
        # Flip one bit inside the second record's value: its CRC32 no longer
        # matches, so recovery must drop it AND everything after it.
        data = bytearray(open(path, "rb").read())
        data[first_size + 20] ^= 0x01
        with open(path, "wb") as log:
            log.write(data)
        with FileHashStore(path) as reopened:
            assert reopened.get(b"first") == b"ok"
            assert reopened.get(b"second") is None
            assert reopened.get(b"third") is None
            assert reopened.truncated_bytes == len(data) - first_size
            assert reopened.record_count == 1
        assert os.path.getsize(path) == first_size

    def test_record_count_and_scan(self, tmp_path):
        path = str(tmp_path / "store.log")
        with FileHashStore(path) as store:
            store.put(b"a", b"1")
            store.put(b"b", b"2")
            store.delete(b"a")
            assert store.record_count == 3
        records = list(FileHashStore.scan(path))
        assert [(op, key) for op, key, _value in records] == [
            (FileHashStore._OP_PUT, b"a"),
            (FileHashStore._OP_PUT, b"b"),
            (FileHashStore._OP_DELETE, b"a"),
        ]
        with FileHashStore(path) as reopened:
            assert reopened.record_count == 3
            reopened.compact()
            # Compaction rewrites only live records and resets the count.
            assert reopened.record_count == 1

    def test_put_many_batches_records(self, tmp_path):
        path = str(tmp_path / "store.log")
        with FileHashStore(path) as store:
            assert store.put_many((bytes([i]), b"v") for i in range(10)) == 10
            assert store.record_count == 10
            assert len(store) == 10
        with FileHashStore(path) as reopened:
            assert len(reopened) == 10

    def test_fsync_mode_roundtrip(self, tmp_path):
        path = str(tmp_path / "store.log")
        with FileHashStore(path, fsync=True) as store:
            store.put(b"key", b"value")
            store.put_many([(b"k2", b"v2")])
            store.delete(b"k2")
            store.compact()
        with FileHashStore(path) as reopened:
            assert reopened.get(b"key") == b"value"
            assert len(reopened) == 1

    def test_compact_shrinks_log(self, tmp_path):
        path = str(tmp_path / "store.log")
        with FileHashStore(path) as store:
            for i in range(50):
                store.put(b"key", f"value-{i}".encode())
            size_before = os.path.getsize(path)
            store.compact()
            size_after = os.path.getsize(path)
            assert size_after < size_before
            assert store.get(b"key") == b"value-49"

    def test_delete_missing_returns_false(self, tmp_path):
        with FileHashStore(str(tmp_path / "s.log")) as store:
            assert store.delete(b"nope") is False

    def test_string_keys_and_values(self, tmp_path):
        with FileHashStore(str(tmp_path / "s.log")) as store:
            store.put("key", "value")
            assert store.get("key") == b"value"


class TestHotPathAccessors:
    """probe_pages / insert_new_pages vs. the IOOperation-list cost model.

    The hash node's batch loop charges device time from page counts; these
    pins guarantee the fused accessors keep accounting and state identical
    to ``lookup_io`` + ``in`` and ``put`` + ``insert_flush_pages``.
    """

    def _stores(self, **kwargs):
        from repro.storage.hashstore import SSDHashStore

        return SSDHashStore(num_buckets=32, **kwargs), SSDHashStore(num_buckets=32, **kwargs)

    def test_probe_pages_matches_lookup_io_and_contains(self):
        import random

        fast, reference = self._stores()
        rng = random.Random(5)
        keys = [bytes([i]) * 20 for i in range(120)]
        for key in keys[::2]:
            fast.put(key, 1)
            reference.put(key, 1)
        for key in rng.sample(keys, len(keys)):
            pages, present = fast.probe_pages(key)
            operations = reference.lookup_io(key)
            assert pages == len(operations)
            assert all(op.kind == "read" and op.random_access for op in operations)
            assert present == (key in reference)
        assert fast.stats() == reference.stats()

    def test_insert_new_pages_matches_put_plus_insert_io(self):
        fast, reference = self._stores(page_size=256, entry_size=48, write_buffer_pages=2)
        for i in range(40):
            key = bytes([i, i]) * 10
            pages, random_access = fast.insert_new_pages(key, i)
            assert reference.put(key, i) is True
            operations = reference.insert_io(key)
            assert pages == len(operations)
            if operations:
                assert all(op.kind == "write" for op in operations)
                assert random_access == operations[0].random_access
        assert fast.stats() == reference.stats()
        assert dict(fast.items()) == dict(reference.items())

    def test_insert_new_pages_unbuffered_mode(self):
        fast, reference = self._stores(write_buffer_pages=0)
        key = b"k" * 20
        pages, random_access = fast.insert_new_pages(key, True)
        reference.put(key, True)
        operations = reference.insert_io(key)
        assert (pages, random_access) == (1, True)
        assert len(operations) == 1 and operations[0].random_access
        assert fast.stats() == reference.stats()
