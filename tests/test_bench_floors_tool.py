"""Unit tests for tools/check_bench_floors.py (the CI perf-floor guard).

The tool is a standalone script (not part of the ``repro`` package), so it
is loaded straight from its file path.  The tests pin the guard semantics
the hotpath CI job depends on: a regressed speedup fails, a *dropped*
series fails with a message naming the survivors, machine-dependent
series (``cpu_count`` recorded) skip the committed-value comparison but
still must be present, brand-new series in the fresh file pass, and
conditional series (``requires`` an optional module) turn into named
skips -- not failures -- on runners without that module.
"""

from __future__ import annotations

import importlib.util
import json
import sys
from pathlib import Path

import pytest

_TOOL_PATH = Path(__file__).resolve().parents[1] / "tools" / "check_bench_floors.py"


def _load_tool():
    spec = importlib.util.spec_from_file_location("check_bench_floors", _TOOL_PATH)
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


tool = _load_tool()


def _payload(series: dict) -> dict:
    return {"schema": "repro-shhc-bench/1", "series": series}


def test_identical_series_pass():
    committed = _payload({"chunking": {"speedup": 5.0}, "bloom_probe": {"speedup": 3.0}})
    assert tool.check_floors(committed, committed, floor_ratio=0.8) == []


def test_noise_within_floor_ratio_passes():
    committed = _payload({"chunking": {"speedup": 5.0}})
    fresh = _payload({"chunking": {"speedup": 4.1}})  # > 0.8 * 5.0
    assert tool.check_floors(committed, fresh, floor_ratio=0.8) == []


def test_regression_below_floor_fails():
    committed = _payload({"chunking": {"speedup": 5.0}})
    fresh = _payload({"chunking": {"speedup": 3.9}})  # < 0.8 * 5.0
    failures = tool.check_floors(committed, fresh, floor_ratio=0.8)
    assert len(failures) == 1
    assert "chunking" in failures[0]
    assert "3.90" in failures[0] and "4.00" in failures[0]


def test_missing_series_fails_and_names_survivors():
    committed = _payload(
        {"chunking": {"speedup": 5.0}, "service_throughput": {"speedup": 2.0, "cpu_count": 4}}
    )
    fresh = _payload({"chunking": {"speedup": 5.0}})
    failures = tool.check_floors(committed, fresh, floor_ratio=0.8)
    assert len(failures) == 1
    assert failures[0].startswith("service_throughput: series disappeared")
    # The message must name what the fresh run *did* produce, so the reader
    # can tell a renamed leg from a dropped one at a glance.
    assert "chunking" in failures[0]


def test_missing_series_from_empty_fresh_run():
    committed = _payload({"chunking": {"speedup": 5.0}})
    failures = tool.check_floors(committed, _payload({}), floor_ratio=0.8)
    assert len(failures) == 1
    assert "(none)" in failures[0]


def test_cpu_count_series_skips_committed_comparison():
    # A 16-core dev box commits speedup 6.0; a 2-core CI runner measures
    # 1.1.  Machine-dependent, so no failure -- presence is the contract.
    committed = _payload({"sweep_wall_clock": {"speedup": 6.0, "cpu_count": 16}})
    fresh = _payload({"sweep_wall_clock": {"speedup": 1.1, "cpu_count": 2}})
    assert tool.check_floors(committed, fresh, floor_ratio=0.8) == []


def test_new_series_in_fresh_file_passes():
    committed = _payload({"chunking": {"speedup": 5.0}})
    fresh = _payload({"chunking": {"speedup": 5.0}, "service_throughput": {"speedup": 2.0}})
    assert tool.check_floors(committed, fresh, floor_ratio=0.8) == []


def test_lost_speedup_field_fails():
    committed = _payload({"chunking": {"speedup": 5.0}})
    fresh = _payload({"chunking": {"unit": "MB/s"}})
    failures = tool.check_floors(committed, fresh, floor_ratio=0.8)
    assert failures == ["chunking: fresh benchmark lost its 'speedup' field"]


def test_series_without_speedup_is_not_guarded():
    committed = _payload({"notes": {"unit": "freeform"}})
    fresh = _payload({"notes": {"unit": "freeform"}})
    assert tool.check_floors(committed, fresh, floor_ratio=0.8) == []


MISSING_MODULE = "definitely_not_an_installed_module_xyz"


def test_requires_series_missing_with_module_absent_is_a_named_skip():
    committed = _payload(
        {"chunking": {"speedup": 5.0}, "numpy_probe": {"speedup": 3.0, "requires": MISSING_MODULE}}
    )
    fresh = _payload({"chunking": {"speedup": 5.0}})
    skips = []
    assert tool.check_floors(committed, fresh, floor_ratio=0.8, skips=skips) == []
    assert skips == [
        f"numpy_probe: skipped (requires {MISSING_MODULE}, absent on this runner)"
    ]


def test_requires_series_missing_with_module_present_still_fails():
    # ``math`` is always importable, so a missing conditional series on a
    # capable runner is a dropped leg, same as any other disappearance.
    committed = _payload({"numpy_probe": {"speedup": 3.0, "requires": "math"}})
    failures = tool.check_floors(committed, _payload({}), floor_ratio=0.8)
    assert len(failures) == 1
    assert failures[0].startswith("numpy_probe: series disappeared")


def test_requires_series_present_is_floor_guarded_normally():
    # Once the fresh run produced the series, ``requires`` changes nothing:
    # the usual floor comparison applies.
    committed = _payload({"numpy_probe": {"speedup": 3.0, "requires": MISSING_MODULE}})
    fresh = _payload({"numpy_probe": {"speedup": 1.0, "requires": MISSING_MODULE}})
    failures = tool.check_floors(committed, fresh, floor_ratio=0.8)
    assert len(failures) == 1
    assert "numpy_probe" in failures[0]


def test_requirement_available_handles_bogus_names():
    assert tool.requirement_available("math") is True
    assert tool.requirement_available(MISSING_MODULE) is False


def test_main_prints_skip_and_excludes_skipped_from_guarded(tmp_path, capsys):
    committed = tmp_path / "committed.json"
    fresh = tmp_path / "fresh.json"
    committed.write_text(
        json.dumps(
            _payload(
                {
                    "chunking": {"speedup": 5.0},
                    "numpy_probe": {"speedup": 3.0, "requires": MISSING_MODULE},
                }
            )
        )
    )
    fresh.write_text(json.dumps(_payload({"chunking": {"speedup": 5.0}})))
    assert tool.main([str(committed), str(fresh)]) == 0
    out = capsys.readouterr().out
    assert f"perf floor skipped: numpy_probe: skipped (requires {MISSING_MODULE}" in out
    assert "perf floors ok" in out
    # The guarded list must not claim the skipped series was checked.
    guarded_line = [line for line in out.splitlines() if "perf floors ok" in line][0]
    assert "numpy_probe" not in guarded_line
    assert "chunking" in guarded_line


def test_main_exit_codes(tmp_path, capsys):
    committed = tmp_path / "committed.json"
    fresh = tmp_path / "fresh.json"
    committed.write_text(json.dumps(_payload({"chunking": {"speedup": 5.0}})))

    fresh.write_text(json.dumps(_payload({"chunking": {"speedup": 5.0}})))
    assert tool.main([str(committed), str(fresh)]) == 0
    assert "chunking" in capsys.readouterr().out

    fresh.write_text(json.dumps(_payload({})))
    assert tool.main([str(committed), str(fresh)]) == 1
    assert "PERF REGRESSION" in capsys.readouterr().err


def test_main_floor_ratio_flag(tmp_path):
    committed = tmp_path / "committed.json"
    fresh = tmp_path / "fresh.json"
    committed.write_text(json.dumps(_payload({"chunking": {"speedup": 5.0}})))
    fresh.write_text(json.dumps(_payload({"chunking": {"speedup": 3.0}})))
    assert tool.main([str(committed), str(fresh)]) == 1
    assert tool.main([str(committed), str(fresh), "--floor-ratio", "0.5"]) == 0
