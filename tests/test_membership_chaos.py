"""Property-based chaos harness for the membership/failover surface.

Random seeded interleavings of join / leave / crash / recover run against a
replicated cluster while a workload streams through it.  After **every**
step the core invariants are asserted:

* dedup accuracy is 100% for ``replication_factor >= 2`` (every verdict
  matches an exact oracle);
* every fingerprint's *live replica set* matches the partition map: each
  member of the desired (live successor) set holds a copy, i.e. the
  cluster is fully replicated after each repairing operation;
* ``distinct`` counts are conserved: the cluster never loses (or invents)
  a fingerprint, under any interleaving.

The harness keeps at most ``replication_factor - 1`` nodes down at once --
the regime the paper's replication is sized for; anything beyond that is
expected data loss, not a regression.
"""

from __future__ import annotations

import random

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core.cluster import SHHCCluster
from repro.core.config import ClusterConfig, HashNodeConfig
from repro.core.membership import ChurnPlan, MembershipManager
from repro.dedup.fingerprint import synthetic_fingerprint

#: Upper bound on cluster size so runs stay cheap.
MAX_NODES = 8
#: Distinct fingerprint identities the workload draws from (forces dupes).
IDENTITIES = 260
#: Fingerprints streamed between consecutive chaos operations.
BATCH = 24

OPS = ("join", "leave", "crash", "recover")


def build_cluster(num_nodes: int, replication: int) -> SHHCCluster:
    return SHHCCluster(
        ClusterConfig(
            num_nodes=num_nodes,
            node=HashNodeConfig(
                ram_cache_entries=256, bloom_expected_items=20_000, ssd_buckets=1 << 10
            ),
            replication_factor=replication,
            virtual_nodes=32,
        )
    )


class ChaosRun:
    """One interleaving: applies ops, streams lookups, asserts invariants."""

    def __init__(self, seed: int, replication: int) -> None:
        self.rng = random.Random(seed)
        self.replication = replication
        self.cluster = build_cluster(4, replication)
        self.manager = MembershipManager(self.cluster)
        self.controller = self.manager.controller
        self.oracle: set = set()
        self.next_node = 4
        self.ops_applied: list = []

    # -- chaos operations ---------------------------------------------------------
    def down_nodes(self):
        return [n for n in self.cluster.node_names if self.cluster.is_down(n)]

    def live_nodes(self):
        return [n for n in self.cluster.node_names if not self.cluster.is_down(n)]

    def apply(self, op: str) -> bool:
        """Apply one operation if its precondition holds; returns whether it ran."""
        cluster = self.cluster
        if op == "join":
            if cluster.num_nodes >= MAX_NODES:
                return False
            node_id = f"hashnode-{self.next_node}"
            self.next_node += 1
            report = self.manager.add_node(node_id)
            assert report.unreachable == 0, "join migration hit unreadable digests"
        elif op == "leave":
            # Only retire live nodes, and keep enough members for the factor.
            candidates = self.live_nodes()
            if len(cluster.nodes) <= max(2, self.replication) or len(candidates) <= 1:
                return False
            victim = self.rng.choice(sorted(candidates))
            report = self.manager.remove_node(victim)
            assert report.unreachable == 0, "leave migration hit unreadable digests"
        elif op == "crash":
            # Never take down more than replication-1 nodes at once.
            if len(self.down_nodes()) >= self.replication - 1:
                return False
            candidates = self.live_nodes()
            if len(candidates) <= 1:
                return False
            victim = self.rng.choice(sorted(candidates))
            self.controller.handle_failure(victim)
        elif op == "recover":
            downed = self.down_nodes()
            if not downed:
                return False
            self.controller.handle_recovery(self.rng.choice(sorted(downed)))
        else:  # pragma: no cover - guarded by OPS
            raise AssertionError(op)
        self.ops_applied.append(op)
        return True

    # -- workload + invariants ----------------------------------------------------
    def stream(self) -> None:
        """Send one batch of lookups and check every verdict against the oracle."""
        batch = [
            synthetic_fingerprint(self.rng.randrange(IDENTITIES))
            for _ in range(BATCH)
        ]
        for outcome in self.cluster.lookup_batch(batch):
            expected = outcome.fingerprint.digest in self.oracle
            self.oracle.add(outcome.fingerprint.digest)
            assert outcome.is_duplicate == expected, (
                f"verdict mismatch after {self.ops_applied!r}: "
                f"expected duplicate={expected}"
            )

    def check_invariants(self) -> None:
        cluster = self.cluster
        # Conservation: nothing lost, nothing invented (scans down nodes too).
        assert cluster.distinct_fingerprints() == len(self.oracle), (
            f"distinct count drifted after {self.ops_applied!r}"
        )
        # Replication health: every digest on min(k, live) nodes.
        report = self.controller.consistency_report()
        assert report.is_healthy, (
            f"under-replicated={report.under_replicated} lost={report.lost} "
            f"after {self.ops_applied!r}"
        )
        # Placement agreement: every member of the live desired replica set
        # actually holds a copy (extras from old repairs are allowed).
        placement = self.controller.placement()
        for digest, holders in placement.items():
            fingerprint = self.manager._as_fingerprint(
                digest, self._value_of(digest, holders)
            )
            desired = self.controller.desired_nodes(fingerprint)
            missing = [n for n in desired if n not in holders]
            assert not missing, (
                f"digest missing from replica-set members {missing} "
                f"after {self.ops_applied!r}"
            )

    def _value_of(self, digest, holders):
        for holder in holders:
            value = self.cluster.nodes[holder].store.get(digest)
            if value is not None:
                return value
        return 0

    def run(self, num_ops: int = 6) -> None:
        self.stream()  # warm the cluster before the first membership change
        for _ in range(num_ops):
            # Every op ends in a repair (migration or anti-entropy), so the
            # invariants must hold immediately after it -- even though the
            # preceding stream may have written while a node was down.
            if self.apply(self.rng.choice(OPS)):
                self.check_invariants()
            self.stream()
        # End of chaos: heal whatever is still down, then everything must be
        # fully consistent (writes made during the last outage included).
        for node in self.down_nodes():
            self.controller.handle_recovery(node)
        self.check_invariants()
        assert len(self.oracle) > 0


# 200+ randomized interleavings: 120 at k=2, 80 at k=3.
@pytest.mark.parametrize("seed", range(120))
def test_chaos_interleavings_replication_2(seed):
    ChaosRun(seed, replication=2).run()


@pytest.mark.parametrize("seed", range(200, 280))
def test_chaos_interleavings_replication_3(seed):
    ChaosRun(seed, replication=3).run()


class TestChaosHarness:
    def test_preconditions_filter_impossible_ops(self):
        run = ChaosRun(seed=1, replication=2)
        assert run.apply("recover") is False  # nothing is down
        assert run.apply("crash") is True
        assert run.apply("crash") is False  # k-1 nodes already down
        assert run.apply("recover") is True

    def test_leave_keeps_enough_members_for_the_factor(self):
        run = ChaosRun(seed=2, replication=3)
        # 4 nodes at k=3: one leave allowed (down to 3), then refused.
        assert run.apply("leave") is True
        assert run.apply("leave") is False

    def test_operations_are_deterministic_per_seed(self):
        first = ChaosRun(seed=7, replication=2)
        second = ChaosRun(seed=7, replication=2)
        first.run()
        second.run()
        assert first.ops_applied == second.ops_applied
        assert first.oracle == second.oracle


@settings(
    max_examples=30,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
@given(
    seed=st.integers(min_value=0, max_value=2**31 - 1),
    replication=st.sampled_from([2, 3]),
    num_ops=st.integers(min_value=1, max_value=8),
)
def test_chaos_property_any_seed_any_length(seed, replication, num_ops):
    """Hypothesis sweep: arbitrary seeds/lengths uphold the same invariants."""
    ChaosRun(seed, replication=replication).run(num_ops=num_ops)


@given(
    events=st.integers(min_value=1, max_value=32),
    kind=st.sampled_from(ChurnPlan.KINDS),
    start=st.floats(min_value=0.0, max_value=10.0, allow_nan=False),
    horizon=st.floats(min_value=0.5, max_value=100.0, allow_nan=False),
)
def test_churn_plan_schedule_properties(events, kind, start, horizon):
    """Schedules are in-bounds, ordered, and sized exactly like the plan."""
    plan = ChurnPlan(kind=kind, events=events, start=start)
    if horizon <= start:
        with pytest.raises(ValueError):
            plan.schedule(horizon)
        return
    schedule = plan.schedule(horizon)
    assert len(schedule) == events
    times = [event.time for event in schedule]
    assert times == sorted(times)
    assert all(start <= t < horizon for t in times)
    if kind == "grow":
        assert all(e.action == "join" for e in schedule)
    elif kind == "shrink":
        assert all(e.action == "leave" for e in schedule)
    else:
        assert schedule[0].action == "join"
