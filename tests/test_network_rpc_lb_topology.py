"""Tests for the RPC layer, load balancer policies and topology builder."""

from __future__ import annotations

import pytest

from repro.network.loadbalancer import (
    LeastConnectionsPolicy,
    LoadBalancer,
    RoundRobinPolicy,
    SourceHashPolicy,
    WeightedRoundRobinPolicy,
)
from repro.network.rpc import RpcError, RpcLayer
from repro.network.switch import NetworkSwitch
from repro.network.topology import ClusterTopology
from repro.simulation.engine import Simulator
from repro.simulation.process import run_process


class TestRpcLayer:
    def _layer(self, sim=None):
        switch = NetworkSwitch(sim)
        return RpcLayer(switch, sim)

    def test_immediate_mode_call(self):
        rpc = self._layer()
        rpc.register("server", lambda payload: payload * 2)
        result = rpc.call("client", "server", 21, payload_bytes=8)
        assert result.triggered and result.value == 42

    def test_call_to_unknown_service_raises(self):
        rpc = self._layer()
        with pytest.raises(RpcError):
            rpc.call("client", "nowhere", None, payload_bytes=8)

    def test_simulated_call_round_trip(self, sim):
        rpc = self._layer(sim)
        rpc.register("server", lambda payload: (payload + 1, 16))
        responses = []
        rpc.call("client", "server", 1, payload_bytes=64).add_callback(
            lambda event: responses.append((sim.now, event.value))
        )
        sim.run()
        assert responses[0][1] == 2
        assert responses[0][0] > 0.0
        assert rpc.pending_calls == 0

    def test_handler_returning_event_defers_response(self, sim):
        rpc = self._layer(sim)

        def slow_handler(payload):
            done = sim.event("slow")
            sim.schedule(5.0, done.succeed, (payload, 8))
            return done

        rpc.register("server", slow_handler)
        responses = []
        rpc.call("client", "server", "x", payload_bytes=8).add_callback(
            lambda event: responses.append(sim.now)
        )
        sim.run()
        assert responses[0] > 5.0

    def test_call_from_process(self, sim):
        rpc = self._layer(sim)
        rpc.register("echo", lambda payload: payload)

        def caller():
            reply = yield rpc.call("client", "echo", "ping", payload_bytes=16)
            return (reply, sim.now)

        process = run_process(sim, caller())
        sim.run()
        assert process.value[0] == "ping"
        assert process.value[1] > 0

    def test_services_listing(self):
        rpc = self._layer()
        rpc.register("b-service", lambda p: p)
        rpc.register("a-service", lambda p: p)
        assert rpc.services() == ["a-service", "b-service"]

    def test_concurrent_calls_complete_independently(self, sim):
        rpc = self._layer(sim)
        rpc.register("server", lambda payload: payload)
        results = []
        for index in range(10):
            rpc.call("client", "server", index, payload_bytes=16).add_callback(
                lambda event: results.append(event.value)
            )
        sim.run()
        assert sorted(results) == list(range(10))


class TestLoadBalancerPolicies:
    def test_round_robin_cycles(self):
        policy = RoundRobinPolicy()
        backends = ["a", "b", "c"]
        picks = [policy.choose(backends, {}) for _ in range(6)]
        assert picks == ["a", "b", "c", "a", "b", "c"]

    def test_round_robin_empty_backends(self):
        with pytest.raises(ValueError):
            RoundRobinPolicy().choose([], {})

    def test_least_connections_prefers_idle(self):
        policy = LeastConnectionsPolicy()
        assert policy.choose(["a", "b"], {"a": 3, "b": 1}) == "b"
        assert policy.choose(["a", "b"], {"a": 0, "b": 0}) == "a"

    def test_weighted_round_robin_respects_weights(self):
        policy = WeightedRoundRobinPolicy({"big": 3, "small": 1})
        picks = [policy.choose(["big", "small"], {}) for _ in range(8)]
        assert picks.count("big") == 6
        assert picks.count("small") == 2

    def test_weighted_round_robin_validation(self):
        with pytest.raises(ValueError):
            WeightedRoundRobinPolicy({})
        with pytest.raises(ValueError):
            WeightedRoundRobinPolicy({"a": 0})

    def test_source_hash_is_sticky(self):
        policy = SourceHashPolicy()
        backends = ["a", "b", "c", "d"]
        first = policy.choose(backends, {}, source="client-42")
        assert all(policy.choose(backends, {}, source="client-42") == first for _ in range(10))

    def test_source_hash_without_source_defaults_to_first(self):
        assert SourceHashPolicy().choose(["a", "b"], {}) == "a"


class TestLoadBalancer:
    def test_assign_and_release_track_connections(self):
        balancer = LoadBalancer()
        balancer.add_backend("web-0")
        balancer.add_backend("web-1")
        first = balancer.assign()
        assert balancer.active_connections(first) == 1
        balancer.release(first)
        assert balancer.active_connections(first) == 0

    def test_release_without_active_raises(self):
        balancer = LoadBalancer()
        balancer.add_backend("web-0")
        with pytest.raises(ValueError):
            balancer.release("web-0")

    def test_duplicate_backend_rejected(self):
        balancer = LoadBalancer()
        balancer.add_backend("web-0")
        with pytest.raises(ValueError):
            balancer.add_backend("web-0")

    def test_remove_backend(self):
        balancer = LoadBalancer()
        balancer.add_backend("web-0")
        balancer.add_backend("web-1")
        balancer.remove_backend("web-0")
        assert balancer.backends == ["web-1"]
        with pytest.raises(KeyError):
            balancer.remove_backend("ghost")

    def test_round_robin_assignments_are_balanced(self):
        balancer = LoadBalancer()
        for index in range(4):
            balancer.add_backend(f"web-{index}")
        for _ in range(400):
            backend = balancer.assign()
            balancer.release(backend)
        assignments = balancer.assignments()
        assert all(count == 100 for count in assignments.values())
        assert balancer.imbalance() == pytest.approx(1.0)


class TestClusterTopology:
    def test_name_generation(self):
        topology = ClusterTopology(num_clients=2, num_web_servers=3, num_hash_nodes=4)
        assert topology.client_names == ["client-0", "client-1"]
        assert topology.web_server_names == ["web-0", "web-1", "web-2"]
        assert topology.hash_node_names == ["hashnode-0", "hashnode-1", "hashnode-2", "hashnode-3"]
        assert len(topology.all_endpoints) == 9

    def test_validation(self):
        with pytest.raises(ValueError):
            ClusterTopology(num_clients=0)
        with pytest.raises(ValueError):
            ClusterTopology(num_web_servers=0)
        with pytest.raises(ValueError):
            ClusterTopology(num_hash_nodes=0)

    def test_build_network_attaches_every_endpoint(self, sim):
        topology = ClusterTopology(num_clients=1, num_web_servers=1, num_hash_nodes=2)
        network = topology.build_network(sim)
        for endpoint in topology.all_endpoints:
            assert network.switch.is_attached(endpoint)

    def test_built_network_supports_rpc(self, sim):
        topology = ClusterTopology(num_clients=1, num_web_servers=1, num_hash_nodes=1)
        network = topology.build_network(sim)
        network.rpc.register("hashnode-0", lambda payload: payload.upper())
        replies = []
        network.rpc.call("client-0", "hashnode-0", "hi", payload_bytes=16).add_callback(
            lambda event: replies.append(event.value)
        )
        sim.run()
        assert replies == ["HI"]
