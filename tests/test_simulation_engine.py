"""Tests for the discrete-event simulation kernel."""

from __future__ import annotations

import pytest

from repro.simulation.engine import SimulationError, Simulator, StopSimulation


class TestScheduling:
    def test_clock_starts_at_zero(self):
        assert Simulator().now == 0.0

    def test_clock_starts_at_custom_time(self):
        assert Simulator(start_time=5.0).now == 5.0

    def test_events_run_in_time_order(self, sim):
        fired = []
        sim.schedule(5.0, lambda: fired.append("late"))
        sim.schedule(1.0, lambda: fired.append("early"))
        sim.schedule(3.0, lambda: fired.append("middle"))
        sim.run()
        assert fired == ["early", "middle", "late"]

    def test_clock_advances_to_event_time(self, sim):
        times = []
        sim.schedule(2.5, lambda: times.append(sim.now))
        sim.run()
        assert times == [2.5]
        assert sim.now == 2.5

    def test_same_time_events_run_fifo(self, sim):
        fired = []
        for index in range(10):
            sim.schedule(1.0, fired.append, index)
        sim.run()
        assert fired == list(range(10))

    def test_priority_breaks_ties(self, sim):
        fired = []
        sim.schedule(1.0, fired.append, "low", priority=5)
        sim.schedule(1.0, fired.append, "high", priority=-5)
        sim.run()
        assert fired == ["high", "low"]

    def test_negative_delay_rejected(self, sim):
        with pytest.raises(SimulationError):
            sim.schedule(-0.1, lambda: None)

    def test_schedule_at_absolute_time(self, sim):
        fired = []
        sim.schedule(1.0, lambda: sim.schedule_at(4.0, lambda: fired.append(sim.now)))
        sim.run()
        assert fired == [4.0]

    def test_cancelled_event_does_not_fire(self, sim):
        fired = []
        entry = sim.schedule(1.0, fired.append, "x")
        entry.cancel()
        sim.run()
        assert fired == []

    def test_events_processed_counter(self, sim):
        for _ in range(7):
            sim.schedule(1.0, lambda: None)
        sim.run()
        assert sim.events_processed == 7

    def test_pending_events_excludes_cancelled(self, sim):
        sim.schedule(1.0, lambda: None)
        entry = sim.schedule(2.0, lambda: None)
        entry.cancel()
        assert sim.pending_events == 1

    def test_callback_can_schedule_more_events(self, sim):
        fired = []

        def chain(depth):
            fired.append(depth)
            if depth < 5:
                sim.schedule(1.0, chain, depth + 1)

        sim.schedule(0.0, chain, 0)
        sim.run()
        assert fired == [0, 1, 2, 3, 4, 5]
        assert sim.now == 5.0


class TestRunControl:
    def test_run_until_stops_clock_at_bound(self, sim):
        fired = []
        sim.schedule(1.0, fired.append, "a")
        sim.schedule(10.0, fired.append, "b")
        sim.run(until=5.0)
        assert fired == ["a"]
        assert sim.now == 5.0

    def test_run_until_resumable(self, sim):
        fired = []
        sim.schedule(1.0, fired.append, "a")
        sim.schedule(10.0, fired.append, "b")
        sim.run(until=5.0)
        sim.run()
        assert fired == ["a", "b"]

    def test_run_with_max_events(self, sim):
        for _ in range(100):
            sim.schedule(1.0, lambda: None)
        sim.run(max_events=10)
        assert sim.events_processed == 10

    def test_empty_run_reaches_until(self, sim):
        sim.run(until=42.0)
        assert sim.now == 42.0

    def test_stop_simulation_exception_stops_cleanly(self, sim):
        fired = []

        def stopper():
            fired.append("stop")
            raise StopSimulation()

        sim.schedule(1.0, stopper)
        sim.schedule(2.0, fired.append, "never")
        sim.run()
        assert fired == ["stop"]

    def test_step_returns_false_when_empty(self, sim):
        assert sim.step() is False

    def test_step_executes_single_event(self, sim):
        fired = []
        sim.schedule(1.0, fired.append, 1)
        sim.schedule(2.0, fired.append, 2)
        assert sim.step() is True
        assert fired == [1]


class TestPendingEventsCounter:
    """Regression tests for the O(1) pending-event accounting."""

    def _brute_force_pending(self, sim):
        return sum(1 for *_key, entry in sim._calendar if not entry.cancelled)

    def test_counter_tracks_schedule_cancel_and_run(self, sim):
        entries = [sim.schedule(float(i % 7) + 1.0, lambda: None) for i in range(200)]
        assert sim.pending_events == self._brute_force_pending(sim) == 200
        for entry in entries[::3]:
            entry.cancel()
        assert sim.pending_events == self._brute_force_pending(sim)
        sim.run(until=3.0)
        assert sim.pending_events == self._brute_force_pending(sim)
        sim.run()
        assert sim.pending_events == 0
        assert len(sim._calendar) == 0

    def test_cancel_is_idempotent_for_the_counter(self, sim):
        entry = sim.schedule(1.0, lambda: None)
        sim.schedule(2.0, lambda: None)
        entry.cancel()
        entry.cancel()
        entry.cancel()
        assert sim.pending_events == 1

    def test_cancel_after_fire_does_not_corrupt_counter(self, sim):
        entry = sim.schedule(1.0, lambda: None)
        sim.schedule(2.0, lambda: None)
        sim.step()
        entry.cancel()  # already executed: must be a no-op for accounting
        assert sim.pending_events == self._brute_force_pending(sim) == 1

    def test_cancel_from_callback_keeps_counter_consistent(self, sim):
        victim = sim.schedule(5.0, lambda: None)
        sim.schedule(1.0, victim.cancel)
        sim.run()
        assert sim.pending_events == 0
        assert sim.events_processed == 1

    def test_compaction_preserves_order_and_counts(self):
        sim = Simulator()
        fired = []
        keep = []
        cancel = []
        for index in range(3000):
            entry = sim.schedule(float(index) + 1.0, fired.append, index)
            (cancel if index % 3 else keep).append((index, entry))
        for _index, entry in cancel:
            entry.cancel()
        # Enough cancellations to trip compaction (threshold is 512).
        assert len(sim._calendar) < 3000
        assert sim.pending_events == len(keep)
        sim.run()
        assert fired == [index for index, _entry in keep]
        assert sim.pending_events == 0

    def test_repr_does_not_scan(self, sim):
        sim.schedule(1.0, lambda: None)
        assert "pending=1" in repr(sim)


class TestEvents:
    def test_event_succeed_value(self, sim):
        event = sim.event("e")
        event.succeed(42)
        assert event.triggered and event.ok
        assert event.value == 42

    def test_event_fail(self, sim):
        event = sim.event("e")
        error = ValueError("boom")
        event.fail(error)
        assert event.triggered and not event.ok
        assert event.exception is error
        with pytest.raises(ValueError):
            _ = event.value

    def test_value_of_pending_event_raises(self, sim):
        with pytest.raises(SimulationError):
            _ = sim.event().value

    def test_double_trigger_rejected(self, sim):
        event = sim.event()
        event.succeed(1)
        with pytest.raises(SimulationError):
            event.succeed(2)

    def test_fail_requires_exception(self, sim):
        with pytest.raises(TypeError):
            sim.event().fail("not an exception")

    def test_callback_runs_on_trigger(self, sim):
        event = sim.event()
        seen = []
        event.add_callback(lambda e: seen.append(e.value))
        event.succeed("payload")
        assert seen == ["payload"]

    def test_callback_added_after_trigger_runs_immediately(self, sim):
        event = sim.event()
        event.succeed(7)
        seen = []
        event.add_callback(lambda e: seen.append(e.value))
        assert seen == [7]

    def test_timeout_event(self, sim):
        event = sim.timeout(3.0, value="done")
        seen = []
        event.add_callback(lambda e: seen.append((sim.now, e.value)))
        sim.run()
        assert seen == [(3.0, "done")]

    def test_all_of_collects_values_in_order(self, sim):
        a = sim.timeout(2.0, "a")
        b = sim.timeout(1.0, "b")
        combined = sim.all_of([a, b])
        seen = []
        combined.add_callback(lambda e: seen.append((sim.now, e.value)))
        sim.run()
        assert seen == [(2.0, ["a", "b"])]

    def test_all_of_empty_succeeds_immediately(self, sim):
        assert sim.all_of([]).triggered

    def test_all_of_propagates_failure(self, sim):
        good = sim.timeout(1.0)
        bad = sim.event()
        combined = sim.all_of([good, bad])
        bad.fail(RuntimeError("x"))
        sim.run()
        assert combined.triggered and not combined.ok

    def test_any_of_first_wins(self, sim):
        slow = sim.timeout(5.0, "slow")
        fast = sim.timeout(1.0, "fast")
        combined = sim.any_of([slow, fast])
        seen = []
        combined.add_callback(lambda e: seen.append((sim.now, e.value)))
        sim.run()
        assert seen[0] == (1.0, "fast")
