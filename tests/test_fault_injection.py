"""Tests for the fault-injection harness and the failover experiment."""

from __future__ import annotations

import pytest

from repro.analysis.experiments import run_failover
from repro.cli import main as cli_main
from repro.core.cluster import SHHCCluster
from repro.core.config import ClusterConfig, HashNodeConfig
from repro.core.fault_injection import (
    FaultEvent,
    FaultInjector,
    FaultSchedule,
    FlakyNode,
    NodeUnavailableError,
    make_flaky,
    rolling_outage_schedule,
)
from repro.dedup.fingerprint import synthetic_fingerprint
from repro.frontend.gateway import build_simulated_service
from repro.network.rpc import ServiceUnavailableError
from repro.simulation.engine import Simulator


def make_cluster(num_nodes=4, replication=2, virtual_nodes=0) -> SHHCCluster:
    config = ClusterConfig(
        num_nodes=num_nodes,
        node=HashNodeConfig(ram_cache_entries=512, bloom_expected_items=50_000, ssd_buckets=1 << 10),
        replication_factor=replication,
        virtual_nodes=virtual_nodes,
    )
    return SHHCCluster(config)


class TestFaultSchedule:
    def test_builder_orders_events(self):
        schedule = FaultSchedule().recover("n1", at=5.0).crash("n1", at=2.0)
        assert [(e.time, e.action) for e in schedule] == [(2.0, "crash"), (5.0, "recover")]
        assert schedule.horizon == 5.0
        assert len(schedule) == 2

    def test_outage_expands_to_crash_and_recover(self):
        schedule = FaultSchedule().outage("n0", start=1.0, duration=3.0)
        assert [(e.time, e.action, e.node) for e in schedule] == [
            (1.0, "crash", "n0"),
            (4.0, "recover", "n0"),
        ]

    def test_invalid_events_rejected(self):
        with pytest.raises(ValueError):
            FaultEvent(time=1.0, action="explode", node="n0")
        with pytest.raises(ValueError):
            FaultEvent(time=-1.0, action="crash", node="n0")
        with pytest.raises(ValueError):
            FaultSchedule().outage("n0", start=0.0, duration=0.0)

    def test_rolling_outage_keeps_one_node_down_at_a_time(self):
        schedule = rolling_outage_schedule(["a", "b", "c"], period=10.0, downtime=4.0)
        down = set()
        max_down = 0
        for event in schedule:
            if event.action == "crash":
                down.add(event.node)
            else:
                down.discard(event.node)
            max_down = max(max_down, len(down))
        assert max_down == 1
        assert not down
        with pytest.raises(ValueError):
            rolling_outage_schedule(["a"], period=2.0, downtime=2.0)


class TestFaultInjector:
    def test_advance_applies_due_events(self):
        cluster = make_cluster()
        schedule = FaultSchedule().outage("hashnode-1", start=2.0, duration=2.0)
        injector = FaultInjector(cluster, schedule)
        assert injector.advance(1.0) == []
        assert cluster.is_down("hashnode-1") is False
        fired = injector.advance(2.5)
        assert [e.action for e in fired] == ["crash"]
        assert cluster.is_down("hashnode-1") is True
        injector.drain()
        assert cluster.is_down("hashnode-1") is False
        assert injector.crashes == 1 and injector.recoveries == 1
        assert injector.pending == 0

    def test_recovery_hook_runs_after_mark_up(self):
        cluster = make_cluster()
        seen = []
        schedule = FaultSchedule().outage("hashnode-0", start=0.0, duration=1.0)
        injector = FaultInjector(
            cluster,
            schedule,
            on_recovery=lambda node: seen.append((node, cluster.is_down(node))),
        )
        injector.drain()
        assert seen == [("hashnode-0", False)]

    def test_kill_restart_events_destroy_and_recover_state(self, tmp_path):
        from repro.core.persistence import PersistencePolicy

        config = ClusterConfig(
            num_nodes=4,
            node=HashNodeConfig(
                ram_cache_entries=512, bloom_expected_items=50_000, ssd_buckets=1 << 10
            ),
            replication_factor=2,
        )
        cluster = SHHCCluster(
            config, persistence=PersistencePolicy(directory=str(tmp_path))
        )
        fingerprints = [synthetic_fingerprint(i) for i in range(100)]
        cluster.lookup_batch(fingerprints)
        held = len(cluster.nodes["hashnode-1"].store)
        assert held > 0

        schedule = FaultSchedule().kill_restart("hashnode-1", start=1.0, duration=2.0)
        injector = FaultInjector(cluster, schedule)
        injector.advance(1.5)
        assert cluster.is_down("hashnode-1")
        assert len(cluster.nodes["hashnode-1"].store) == 0  # state destroyed
        injector.drain()
        assert not cluster.is_down("hashnode-1")
        assert len(cluster.nodes["hashnode-1"].store) == held  # recovered
        assert injector.kills == 1 and injector.restarts == 1
        # Kill/restart also count toward the crash/recovery totals.
        assert injector.crashes == 1 and injector.recoveries == 1
        [(node, report)] = injector.recovery_reports
        assert node == "hashnode-1" and report is not None and report.entries == held
        cluster.close()

    def test_kill_restart_degrade_without_lifecycle_api(self):
        class BareTarget:
            def __init__(self):
                self.down = set()

            def mark_down(self, node):
                self.down.add(node)

            def mark_up(self, node):
                self.down.discard(node)

        target = BareTarget()
        schedule = FaultSchedule().kill("n1", at=0.0).restart("n1", at=1.0)
        injector = FaultInjector(target, schedule)
        injector.advance(0.5)
        assert target.down == {"n1"}
        injector.drain()
        assert target.down == set()
        assert injector.recovery_reports == [("n1", None)]

    def test_kill_restart_builder_validation(self):
        with pytest.raises(ValueError):
            FaultSchedule().kill_restart("n1", start=1.0, duration=0.0)

    def test_attach_schedules_on_simulator(self):
        sim = Simulator()
        cluster = make_cluster()
        schedule = FaultSchedule().crash("hashnode-2", at=1.0).recover("hashnode-2", at=3.0)
        injector = FaultInjector(cluster, schedule)
        injector.attach(sim)
        observed = []
        sim.schedule_at(2.0, lambda: observed.append(cluster.is_down("hashnode-2")))
        sim.run()
        assert observed == [True]
        assert cluster.is_down("hashnode-2") is False
        assert len(injector.applied) == 2


class TestFlakyNode:
    def test_always_failing_node_raises(self):
        cluster = make_cluster()
        flaky = make_flaky(cluster, "hashnode-0", failure_rate=1.0)
        with pytest.raises(NodeUnavailableError):
            flaky.lookup(synthetic_fingerprint(1))
        assert flaky.injected_failures == 1

    def test_cluster_fails_over_around_flaky_node(self):
        cluster = make_cluster(num_nodes=3, replication=2)
        fingerprints = [synthetic_fingerprint(i) for i in range(60)]
        cluster.lookup_batch(fingerprints)

        victim = cluster.node_names[0]
        make_flaky(cluster, victim, failure_rate=1.0)
        verdicts = [r.is_duplicate for r in cluster.lookup_batch(fingerprints)]
        assert verdicts == [True] * len(fingerprints)
        assert cluster.failovers > 0
        served_by = {r.served_by for r in cluster.lookup_batch(fingerprints)}
        assert victim not in served_by

    def test_simulated_rpc_fails_over_around_flaky_node(self, sim):
        # A grey failure on an RPC-served node must not crash the simulation:
        # the handler answers the batch from the remaining replicas.
        from repro.frontend.client import SimulatedClient

        config = ClusterConfig(
            num_nodes=3,
            node=HashNodeConfig(ram_cache_entries=512, bloom_expected_items=50_000),
            replication_factor=2,
        )
        trace = [synthetic_fingerprint(i % 40) for i in range(240)]
        deployment = build_simulated_service(sim, config, num_clients=1, num_web_servers=1)
        make_flaky(deployment.cluster, "hashnode-0", failure_rate=1.0, seed=5)
        client = SimulatedClient(
            client_id="client-0",
            rpc=deployment.network.rpc,
            load_balancer=deployment.load_balancer,
            fingerprints=trace,
            batch_size=16,
        )
        client.start()
        sim.run()
        assert client.stats.fingerprints_sent == len(trace)
        assert deployment.cluster.failovers > 0

    def test_zero_rate_wrapper_is_transparent(self):
        cluster = make_cluster(num_nodes=2, replication=1)
        fingerprint = synthetic_fingerprint(3)
        cluster.lookup(fingerprint)
        owner = cluster.owner_of(fingerprint)
        wrapper = make_flaky(cluster, owner, failure_rate=0.0)
        assert wrapper.node_id == owner
        assert fingerprint in wrapper
        assert len(wrapper) >= 1
        assert cluster.lookup(fingerprint).is_duplicate is True


class TestRpcAvailability:
    def test_calls_to_down_service_fail_fast(self, sim):
        deployment = build_simulated_service(
            sim,
            ClusterConfig(
                num_nodes=2,
                node=HashNodeConfig(ram_cache_entries=512, bloom_expected_items=50_000),
                replication_factor=2,
            ),
            num_clients=1,
            num_web_servers=1,
            fault_schedule=FaultSchedule().crash("hashnode-0", at=0.5),
        )
        sim.run()
        assert deployment.fault_injector is not None
        assert deployment.fault_injector.crashes == 1
        assert deployment.cluster.is_down("hashnode-0")
        rpc = deployment.network.rpc
        with pytest.raises(ServiceUnavailableError):
            rpc.call("client-0", "hashnode-0", object(), 64)
        assert rpc.unavailable_calls == 1
        # Live services keep answering.
        assert rpc.is_available("hashnode-1")

    def test_simulated_frontend_routes_around_crashed_node(self, sim):
        from repro.frontend.client import SimulatedClient

        config = ClusterConfig(
            num_nodes=3,
            node=HashNodeConfig(ram_cache_entries=512, bloom_expected_items=50_000),
            replication_factor=2,
        )
        trace = [synthetic_fingerprint(i % 40) for i in range(160)]
        deployment = build_simulated_service(
            sim,
            config,
            num_clients=1,
            num_web_servers=1,
            fault_schedule=FaultSchedule().crash("hashnode-1", at=0.002),
        )
        client = SimulatedClient(
            client_id="client-0",
            rpc=deployment.network.rpc,
            load_balancer=deployment.load_balancer,
            fingerprints=trace,
            batch_size=16,
        )
        client.start()
        sim.run()
        assert client.stats.fingerprints_sent == len(trace)
        assert deployment.cluster.is_down("hashnode-1")


class TestDropInFlight:
    """Mid-flight crash semantics: crashed nodes drop, not drain, batches."""

    CONFIG = dict(
        num_nodes=3,
        replication_factor=2,
    )

    def _deployment(self, sim, **kwargs):
        config = ClusterConfig(
            node=HashNodeConfig(ram_cache_entries=512, bloom_expected_items=50_000),
            **self.CONFIG,
        )
        return build_simulated_service(
            sim, config, num_clients=1, num_web_servers=1, **kwargs
        )

    def _client(self, deployment, trace, **kwargs):
        from repro.frontend.client import SimulatedClient

        return SimulatedClient(
            client_id="client-0",
            rpc=deployment.network.rpc,
            load_balancer=deployment.load_balancer,
            fingerprints=trace,
            batch_size=16,
            **kwargs,
        )

    def test_injector_flips_the_cluster_flag(self):
        cluster = make_cluster()
        assert cluster.drop_in_flight is False
        FaultInjector(cluster, FaultSchedule(), drop_in_flight=True)
        assert cluster.drop_in_flight is True

    def test_drain_mode_answers_every_request_without_timeouts(self, sim):
        trace = [synthetic_fingerprint(i % 40) for i in range(240)]
        deployment = self._deployment(
            sim,
            fault_schedule=FaultSchedule().outage("hashnode-1", start=0.002, duration=0.05),
        )
        client = self._client(deployment, trace, request_timeout=0.05, max_retries=3)
        client.start()
        sim.run()
        assert client.stats.fingerprints_sent == len(trace)
        assert client.stats.timeouts == 0
        assert deployment.cluster.dropped_in_flight == 0

    def test_drop_mode_loses_replies_and_client_retries(self, sim):
        trace = [synthetic_fingerprint(i % 40) for i in range(240)]
        deployment = self._deployment(
            sim,
            fault_schedule=FaultSchedule().outage("hashnode-1", start=0.002, duration=0.05),
            drop_in_flight=True,
        )
        client = self._client(deployment, trace, request_timeout=0.05, max_retries=3)
        client.start()
        sim.run()
        # The crash landed on an in-flight batch: its reply was dropped, the
        # client timed out, re-sent, and the retry was answered by the
        # replicas -- no fingerprint was left behind.
        assert deployment.cluster.dropped_in_flight > 0
        assert client.stats.timeouts > 0
        assert client.stats.retries == client.stats.timeouts
        assert client.stats.abandoned == 0
        assert client.stats.fingerprints_sent == len(trace)
        # Latency is client-perceived: the retried batch's sample includes
        # the full timeout wait, not just the successful attempt.
        assert client.stats.request_latency.summary.maximum >= 0.05

    def test_crash_during_service_drops_even_after_recovery(self, sim):
        # The crash *generation* decides, not liveness at reply time: a node
        # that crashes and recovers entirely within one batch's service
        # window still loses that batch's reply.
        from repro.core.protocol import BatchLookupRequest

        config = ClusterConfig(
            node=HashNodeConfig(ram_cache_entries=512, bloom_expected_items=50_000),
            **self.CONFIG,
        )
        cluster = SHHCCluster(config, sim=sim)
        cluster.drop_in_flight = True
        handler = cluster._make_handler(cluster.nodes["hashnode-0"])
        request = BatchLookupRequest(
            fingerprints=[synthetic_fingerprint(i) for i in range(16)], batch_id=1
        )
        reply_event = handler(request)

        def _blip() -> None:
            cluster.mark_down("hashnode-0")
            cluster.mark_up("hashnode-0")

        sim.schedule(1e-6, _blip)  # well inside the batch's service time
        sim.run()
        assert not cluster.is_down("hashnode-0")  # recovered long before
        assert cluster.dropped_in_flight == 1
        assert not reply_event.triggered  # the reply never left the node

    def test_short_outage_still_drops_in_flight_batches(self, sim):
        # End to end: an outage shorter than the batch's remaining service
        # time must not silently degrade to drain mode.
        trace = [synthetic_fingerprint(i % 40) for i in range(240)]
        deployment = self._deployment(
            sim,
            fault_schedule=FaultSchedule().outage("hashnode-1", start=0.002, duration=0.0002),
            drop_in_flight=True,
        )
        client = self._client(deployment, trace, request_timeout=0.05, max_retries=3)
        client.start()
        sim.run()
        assert deployment.cluster.dropped_in_flight > 0
        assert client.stats.timeouts > 0
        assert client.stats.fingerprints_sent == len(trace)

    def test_drop_mode_without_timeout_stalls_the_client(self, sim):
        # The regression the timeout exists for: with replies dropped and no
        # timeout, the closed-loop client waits forever on the lost reply.
        trace = [synthetic_fingerprint(i % 40) for i in range(240)]
        deployment = self._deployment(
            sim,
            fault_schedule=FaultSchedule().outage("hashnode-1", start=0.002, duration=0.05),
            drop_in_flight=True,
        )
        client = self._client(deployment, trace)  # request_timeout=None
        process = client.start()
        sim.run()
        assert deployment.cluster.dropped_in_flight > 0
        assert process.is_alive  # never finished: the lost reply is fatal
        assert client.stats.fingerprints_sent < len(trace)

    def test_client_validates_timeout_and_retries(self, sim):
        deployment = self._deployment(sim)
        with pytest.raises(ValueError):
            self._client(deployment, [synthetic_fingerprint(0)], request_timeout=0.0)
        with pytest.raises(ValueError):
            self._client(deployment, [synthetic_fingerprint(0)], max_retries=-1)


class TestFailoverExperiment:
    def test_zero_dedup_errors_with_replication(self):
        result = run_failover(scale=0.0005, num_nodes=4, replication_factor=2, batch_size=128)
        assert result.crashes == 4 and result.recoveries == 4
        assert result.dedup_errors == 0
        assert result.accuracy == 1.0
        assert result.distinct <= result.total_stored
        rendered = result.render()
        assert "dedup accuracy" in rendered
        assert "crash hashnode-0" in rendered

    def test_single_outage_needs_no_anti_entropy_repair(self):
        # For a single crash/recover cycle, read repair alone keeps every
        # verdict correct: fingerprints written while the primary was down
        # are found on their (never-failing) failover node and the recovered
        # primary is backfilled on first touch.  Rolling outages are the
        # scenario that *requires* the anti-entropy sweep, because a copy
        # written degraded is singular until repaired and a later crash of
        # its holder would lose the verdict.
        result = run_failover(
            scale=0.0005,
            num_nodes=4,
            replication_factor=2,
            batch_size=128,
            schedule=FaultSchedule().outage("hashnode-0", start=20.0, duration=60.0),
            repair_on_recovery=False,
        )
        assert result.crashes == 1 and result.recoveries == 1
        assert result.dedup_errors == 0
        assert result.repaired_copies == 0
        assert result.read_repairs > 0
        # Degraded-mode writes leave single copies behind without the sweep.
        assert result.under_replicated > 0

    def test_unreplicated_run_rejected_before_baseline(self):
        with pytest.raises(ValueError, match="replication_factor must be >= 2"):
            run_failover(scale=0.0005, replication_factor=1)
        # An explicit schedule (e.g. no faults at all) makes k=1 legitimate.
        result = run_failover(
            scale=0.0005, replication_factor=1, schedule=FaultSchedule()
        )
        assert result.crashes == 0 and result.dedup_errors == 0

    def test_cli_failover_rejects_bad_replication(self, capsys):
        assert cli_main(["experiment", "failover", "--replication", "1"]) == 2
        assert "replication_factor" in capsys.readouterr().err

    def test_cli_failover_subcommand(self, capsys):
        exit_code = cli_main([
            "experiment", "failover", "--scale", "0.0005", "--nodes", "4",
            "--replication", "2", "--virtual-nodes", "64",
        ])
        assert exit_code == 0
        out = capsys.readouterr().out
        assert "Failover" in out
        assert "dedup errors" in out


class TestFaultPlan:
    """The declarative fault-plan layer (spec-addressable scenarios)."""

    def test_named_constructors(self):
        from repro.core.fault_injection import FaultPlan

        assert FaultPlan.none().kind == "none"
        assert not FaultPlan.none().has_outages
        rolling = FaultPlan.rolling_outage(0.3, rounds=2)
        assert rolling.has_outages and not rolling.has_grey_failures
        grey = FaultPlan.grey_failure(0.1, flaky_nodes=2)
        assert grey.has_grey_failures and not grey.has_outages
        both = FaultPlan.rolling_grey(0.3, 0.1)
        assert both.has_outages and both.has_grey_failures
        restart = FaultPlan.rolling_restart(0.3, rounds=2)
        assert restart.has_outages and not restart.has_grey_failures

    def test_rolling_restart_schedule_uses_kill_restart_events(self):
        from repro.core.fault_injection import FaultPlan

        nodes = ["n0", "n1", "n2", "n3"]
        schedule = FaultPlan.rolling_restart(0.5).schedule(nodes, horizon=41.0)
        actions = {event.action for event in schedule}
        assert actions == {"kill", "restart"}
        # Same slots/downtimes as the equivalent rolling outage.
        outage = FaultPlan.rolling_outage(0.5).schedule(nodes, horizon=41.0)
        assert [(e.time, e.node) for e in schedule] == [(e.time, e.node) for e in outage]
        assert FaultPlan.from_dict(
            FaultPlan.rolling_restart(0.3).to_dict()
        ) == FaultPlan.rolling_restart(0.3)

    def test_validation(self):
        from repro.core.fault_injection import FaultPlan

        with pytest.raises(ValueError):
            FaultPlan(kind="meteor-strike")
        with pytest.raises(ValueError):
            FaultPlan.rolling_outage(1.0)
        with pytest.raises(ValueError):
            FaultPlan.grey_failure(1.5)
        with pytest.raises(ValueError):
            FaultPlan(rounds=0)

    def test_dict_round_trip(self):
        from repro.core.fault_injection import FaultPlan

        plan = FaultPlan.rolling_grey(0.25, 0.05, flaky_nodes=2, rounds=3)
        assert FaultPlan.from_dict(plan.to_dict()) == plan
        with pytest.raises(ValueError):
            FaultPlan.from_dict({"kind": "none", "bogus": 1})

    def test_schedule_density_sizing(self):
        from repro.core.fault_injection import FaultPlan

        nodes = ["n0", "n1", "n2", "n3"]
        schedule = FaultPlan.rolling_outage(0.5).schedule(nodes, horizon=41.0)
        # One outage (crash + recover) per node, each half its slot long.
        assert len(schedule) == 2 * len(nodes)
        events = schedule.events
        period = (41.0 - 1.0) / len(nodes)
        first_crash = next(e for e in events if e.action == "crash")
        first_recover = next(e for e in events if e.node == first_crash.node and e.action == "recover")
        assert first_recover.time - first_crash.time == pytest.approx(period * 0.5)

    def test_zero_density_is_fault_free(self):
        from repro.core.fault_injection import FaultPlan, rolling_outage_from_density

        assert len(FaultPlan.none().schedule(["a"], horizon=10.0)) == 0
        assert len(rolling_outage_from_density(["a", "b"], horizon=10.0, density=0.0)) == 0

    def test_from_density_validation(self):
        from repro.core.fault_injection import rolling_outage_from_density

        with pytest.raises(ValueError):
            rolling_outage_from_density(["a"], horizon=10.0, density=1.0)
        with pytest.raises(ValueError):
            rolling_outage_from_density(["a"], horizon=0.5, density=0.2)

    def test_apply_grey_is_deterministic(self):
        from repro.core.fault_injection import FaultPlan

        plan = FaultPlan.grey_failure(0.2, flaky_nodes=2)
        first = plan.apply_grey(make_cluster(), seed=3)
        second = plan.apply_grey(make_cluster(), seed=3)
        assert len(first) == len(second) == 2
        fingerprints = [synthetic_fingerprint(i, 8192) for i in range(400)]

        def drops(wrappers, cluster):
            for fp in fingerprints:
                cluster.lookup(fp)
            return [w.injected_failures for w in wrappers]

        # Same seed, same nodes wrapped, same drop pattern.
        cluster_a, cluster_b = make_cluster(), make_cluster()
        wrap_a = plan.apply_grey(cluster_a, seed=3)
        wrap_b = plan.apply_grey(cluster_b, seed=3)
        assert drops(wrap_a, cluster_a) == drops(wrap_b, cluster_b)

    def test_run_failover_with_grey_plan_keeps_accuracy(self):
        from repro.core.fault_injection import FaultPlan

        result = run_failover(
            scale=0.0004,
            replication_factor=2,
            fault_plan=FaultPlan.rolling_grey(0.3, 0.2),
        )
        assert result.dedup_errors == 0
        assert result.crashes > 0
        assert result.fault_plan is not None
        assert result.grey_drops >= 0

    def test_run_failover_outage_density_shorthand(self):
        result = run_failover(scale=0.0004, replication_factor=2, outage_density=0.3)
        assert result.crashes == 4 and result.recoveries == 4
        assert result.dedup_errors == 0 and result.unserved == 0

    def test_run_failover_unreplicated_counts_unserved(self):
        result = run_failover(scale=0.0004, replication_factor=1, outage_density=0.4)
        assert result.unserved > 0
        assert result.accuracy < 1.0
        assert "unserved lookups" in result.render()

    def test_run_failover_rejects_conflicting_fault_arguments(self):
        from repro.core.fault_injection import FaultPlan

        with pytest.raises(ValueError):
            run_failover(
                scale=0.0004,
                fault_plan=FaultPlan.none(),
                outage_density=0.2,
            )

    def test_failover_reports_percentiles_and_tiers(self):
        result = run_failover(scale=0.0004, replication_factor=2)
        p = result.latency_percentiles_faulty
        assert p["p50"] <= p["p95"] <= p["p99"]
        assert set(result.tier_hits) == {"ram", "ssd", "new", "repair"}
        assert sum(result.tier_hits[k] for k in ("ram", "ssd", "new", "repair")) > 0


class TestGatewayFaultPlan:
    def test_build_simulated_service_with_grey_plan(self):
        from repro.core.fault_injection import FaultPlan
        from repro.frontend.gateway import build_simulated_service

        sim = Simulator(seed=5)
        deployment = build_simulated_service(
            sim,
            ClusterConfig(num_nodes=2, node=HashNodeConfig(ram_cache_entries=512,
                                                           bloom_expected_items=10_000)),
            fault_plan=FaultPlan.grey_failure(0.5),
        )
        assert len(deployment.flaky_nodes) == 1
        assert deployment.fault_injector is None

    def test_build_simulated_service_with_outage_plan_needs_horizon(self):
        from repro.core.fault_injection import FaultPlan
        from repro.frontend.gateway import build_simulated_service

        with pytest.raises(ValueError):
            build_simulated_service(
                Simulator(), fault_plan=FaultPlan.rolling_outage(0.3)
            )
        deployment = build_simulated_service(
            Simulator(),
            fault_plan=FaultPlan.rolling_outage(0.3),
            fault_horizon=10.0,
        )
        assert deployment.fault_injector is not None

    def test_fault_plan_and_schedule_are_exclusive(self):
        from repro.core.fault_injection import FaultPlan
        from repro.frontend.gateway import build_simulated_service

        with pytest.raises(ValueError):
            build_simulated_service(
                Simulator(),
                fault_schedule=FaultSchedule().crash("hashnode-0", at=1.0),
                fault_plan=FaultPlan.grey_failure(0.1),
            )
