"""Tests for workload profiles, trace generation, mixing and arrivals."""

from __future__ import annotations

import pytest

from repro.workloads.arrival import ClosedLoopWindow, OpenLoopArrivals
from repro.workloads.mixer import WorkloadMix, table_i_mix
from repro.workloads.profiles import (
    HOME_DIR,
    MAIL_SERVER,
    TABLE_I_PROFILES,
    TIME_MACHINE,
    WEB_SERVER,
    WorkloadProfile,
    profile_by_name,
)
from repro.workloads.traces import TraceGenerator, measure_trace


class TestProfiles:
    def test_table_i_values_match_the_paper(self):
        assert WEB_SERVER.fingerprints == 2_094_832
        assert WEB_SERVER.redundancy == pytest.approx(0.18)
        assert WEB_SERVER.duplicate_distance == 10_781
        assert HOME_DIR.fingerprints == 2_501_186
        assert HOME_DIR.redundancy == pytest.approx(0.37)
        assert MAIL_SERVER.fingerprints == 24_122_047
        assert MAIL_SERVER.redundancy == pytest.approx(0.85)
        assert MAIL_SERVER.duplicate_distance == 246_253
        assert TIME_MACHINE.fingerprints == 13_146_417
        assert TIME_MACHINE.chunk_size == 8192
        assert all(p.chunk_size == 4096 for p in (WEB_SERVER, HOME_DIR, MAIL_SERVER))
        assert len(TABLE_I_PROFILES) == 4

    def test_profile_by_name(self):
        assert profile_by_name("mail-server") is MAIL_SERVER
        with pytest.raises(KeyError):
            profile_by_name("nonexistent")

    def test_scaling_preserves_shape(self):
        scaled = MAIL_SERVER.scaled(0.01)
        assert scaled.fingerprints == pytest.approx(MAIL_SERVER.fingerprints * 0.01, rel=0.01)
        assert scaled.redundancy == MAIL_SERVER.redundancy
        assert scaled.duplicate_distance == pytest.approx(MAIL_SERVER.duplicate_distance * 0.01)
        assert scaled.chunk_size == MAIL_SERVER.chunk_size

    def test_with_fingerprints(self):
        resized = WEB_SERVER.with_fingerprints(50_000)
        assert resized.fingerprints == pytest.approx(50_000, rel=0.01)

    def test_unique_fingerprints_estimate(self):
        assert WEB_SERVER.unique_fingerprints == pytest.approx(
            WEB_SERVER.fingerprints * 0.82, rel=0.01
        )

    def test_logical_bytes(self):
        assert WEB_SERVER.logical_bytes == WEB_SERVER.fingerprints * 4096

    def test_validation(self):
        with pytest.raises(ValueError):
            WorkloadProfile("bad", 0, 0.5, 100, 4096)
        with pytest.raises(ValueError):
            WorkloadProfile("bad", 100, 1.5, 100, 4096)
        with pytest.raises(ValueError):
            WorkloadProfile("bad", 100, 0.5, 0, 4096)
        with pytest.raises(ValueError):
            WEB_SERVER.scaled(0.0)


class TestTraceGenerator:
    def test_deterministic_given_seed(self):
        profile = WEB_SERVER.scaled(0.001)
        first = [fp.digest for fp in TraceGenerator(profile, seed=5).generate()]
        second = [fp.digest for fp in TraceGenerator(profile, seed=5).generate()]
        assert first == second

    def test_different_seeds_differ(self):
        profile = WEB_SERVER.scaled(0.001)
        first = [fp.digest for fp in TraceGenerator(profile, seed=1).generate()]
        second = [fp.digest for fp in TraceGenerator(profile, seed=2).generate()]
        assert first != second

    def test_trace_length_matches_profile(self):
        profile = HOME_DIR.scaled(0.002)
        trace = TraceGenerator(profile, seed=0).materialize()
        assert len(trace) == profile.fingerprints

    def test_redundancy_matches_target(self):
        profile = MAIL_SERVER.scaled(0.002)
        stats = TraceGenerator(profile, seed=0).materialize().statistics()
        assert stats.redundancy == pytest.approx(profile.redundancy, abs=0.02)

    def test_duplicate_distance_matches_target(self):
        profile = HOME_DIR.scaled(0.01)
        stats = TraceGenerator(profile, seed=0).materialize().statistics()
        assert stats.mean_duplicate_distance == pytest.approx(
            profile.duplicate_distance, rel=0.25
        )

    def test_chunk_sizes_follow_profile(self):
        trace = TraceGenerator(TIME_MACHINE.scaled(0.0001), seed=0).materialize()
        assert all(fp.chunk_size == 8192 for fp in trace.fingerprints)

    def test_identity_spaces_are_disjoint(self):
        web = set(fp.digest for fp in TraceGenerator(WEB_SERVER.scaled(0.0005), seed=0).generate())
        home = set(fp.digest for fp in TraceGenerator(HOME_DIR.scaled(0.0005), seed=0).generate())
        assert not (web & home)

    def test_explicit_count_overrides_profile(self):
        trace = list(TraceGenerator(WEB_SERVER, seed=0).generate(count=500))
        assert len(trace) == 500

    def test_count_validation(self):
        with pytest.raises(ValueError):
            list(TraceGenerator(WEB_SERVER, seed=0).generate(count=0))

    def test_measure_trace_on_known_sequence(self):
        from repro.dedup.fingerprint import synthetic_fingerprint

        sequence = [
            synthetic_fingerprint(1),
            synthetic_fingerprint(2),
            synthetic_fingerprint(1),  # distance 2
            synthetic_fingerprint(3),
            synthetic_fingerprint(2),  # distance 3
        ]
        stats = measure_trace(sequence)
        assert stats.fingerprints == 5
        assert stats.unique_fingerprints == 3
        assert stats.redundancy == pytest.approx(0.4)
        assert stats.mean_duplicate_distance == pytest.approx(2.5)
        assert stats.as_row()["redundant_pct"] == 40.0


class TestWorkloadMix:
    def test_table_i_mix_contains_all_profiles(self):
        mix = table_i_mix()
        assert [p.name for p in mix.profiles] == [p.name for p in TABLE_I_PROFILES]
        assert mix.total_fingerprints == sum(p.fingerprints for p in TABLE_I_PROFILES)

    def test_interleaved_length_is_sum_of_streams(self):
        mix = table_i_mix()
        combined = mix.interleaved(scale=0.0002, granularity=16)
        expected = sum(p.scaled(0.0002).fingerprints for p in TABLE_I_PROFILES)
        assert len(combined) == expected

    def test_concatenated_equals_streams_joined(self):
        mix = WorkloadMix([WEB_SERVER, HOME_DIR], seed=1)
        streams = mix.streams(scale=0.0003)
        concatenated = mix.concatenated(scale=0.0003)
        assert concatenated == streams[0] + streams[1]

    def test_split_among_clients_covers_everything(self):
        mix = table_i_mix()
        shares = mix.split_among_clients(2, scale=0.0002)
        combined = mix.interleaved(scale=0.0002)
        assert sum(len(share) for share in shares) == len(combined)
        assert abs(len(shares[0]) - len(shares[1])) <= 1

    def test_validation(self):
        with pytest.raises(ValueError):
            WorkloadMix([])
        with pytest.raises(ValueError):
            table_i_mix().split_among_clients(0)


class TestArrivals:
    def test_open_loop_deterministic_intervals(self):
        arrivals = OpenLoopArrivals(rate=100.0, count=5, jitter=0.0)
        times = list(arrivals.times())
        assert times == pytest.approx([0.0, 0.01, 0.02, 0.03, 0.04])
        assert arrivals.nominal_duration == pytest.approx(0.05)

    def test_open_loop_poisson_mean_rate(self):
        arrivals = OpenLoopArrivals(rate=1000.0, count=20_000, jitter=1.0, seed=3)
        times = list(arrivals.times())
        achieved_rate = (len(times) - 1) / (times[-1] - times[0])
        assert achieved_rate == pytest.approx(1000.0, rel=0.05)

    def test_open_loop_reproducible(self):
        a = list(OpenLoopArrivals(rate=10.0, count=50, jitter=1.0, seed=9).times())
        b = list(OpenLoopArrivals(rate=10.0, count=50, jitter=1.0, seed=9).times())
        assert a == b

    def test_open_loop_validation(self):
        with pytest.raises(ValueError):
            OpenLoopArrivals(rate=0.0, count=10)
        with pytest.raises(ValueError):
            OpenLoopArrivals(rate=1.0, count=0)
        with pytest.raises(ValueError):
            OpenLoopArrivals(rate=1.0, count=1, jitter=2.0)

    def test_closed_loop_expected_throughput(self):
        window = ClosedLoopWindow(window=4, think_time=0.0)
        assert window.expected_throughput(0.01) == pytest.approx(400.0)
        with pytest.raises(ValueError):
            ClosedLoopWindow(window=0)
        with pytest.raises(ValueError):
            ClosedLoopWindow(window=1, think_time=-1.0)
