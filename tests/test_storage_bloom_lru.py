"""Tests for the bloom filter and the LRU cache."""

from __future__ import annotations

import hashlib
import random

import pytest

from repro.storage.bloom import BloomFilter, optimal_parameters
from repro.storage.lru import LRUCache


def _digests(start: int, count: int) -> list:
    """Realistic 20-byte SHA-1 fingerprints (the digest fast-path keys)."""
    return [hashlib.sha1(index.to_bytes(8, "big")).digest() for index in range(start, start + count)]


class TestBloomParameters:
    def test_optimal_parameters_reasonable(self):
        bits, hashes = optimal_parameters(1000, 0.01)
        # Classic formula: ~9.6 bits/key and ~7 hashes at 1% FP.
        assert 9 * 1000 <= bits <= 11 * 1000
        assert 6 <= hashes <= 8

    def test_optimal_parameters_validation(self):
        with pytest.raises(ValueError):
            optimal_parameters(0, 0.01)
        with pytest.raises(ValueError):
            optimal_parameters(100, 1.5)

    def test_explicit_sizing_overrides(self):
        bloom = BloomFilter(expected_items=100, num_bits=1024, num_hashes=3)
        assert bloom.num_bits == 1024
        assert bloom.num_hashes == 3


class TestBloomBehaviour:
    def test_no_false_negatives(self):
        bloom = BloomFilter(expected_items=5000, false_positive_rate=0.01)
        keys = [f"key-{i}".encode() for i in range(5000)]
        bloom.update(keys)
        assert all(key in bloom for key in keys)

    def test_false_positive_rate_near_target(self):
        bloom = BloomFilter(expected_items=10_000, false_positive_rate=0.01)
        bloom.update(f"member-{i}".encode() for i in range(10_000))
        probes = 20_000
        false_positives = sum(
            1 for i in range(probes) if f"absent-{i}".encode() in bloom
        )
        rate = false_positives / probes
        assert rate < 0.03  # target 1%, generous bound to avoid flakiness

    def test_empty_filter_rejects_everything(self):
        bloom = BloomFilter(expected_items=100)
        assert b"anything" not in bloom
        assert bloom.fill_ratio() == 0.0

    def test_clear(self):
        bloom = BloomFilter(expected_items=100)
        bloom.add(b"x")
        assert b"x" in bloom
        bloom.clear()
        assert b"x" not in bloom
        assert bloom.count == 0

    def test_string_keys_accepted(self):
        bloom = BloomFilter(expected_items=10)
        bloom.add("hello")
        assert "hello" in bloom

    def test_union(self):
        a = BloomFilter(expected_items=100, num_bits=2048, num_hashes=3)
        b = BloomFilter(expected_items=100, num_bits=2048, num_hashes=3)
        a.add(b"only-a")
        b.add(b"only-b")
        merged = a.union(b)
        assert b"only-a" in merged and b"only-b" in merged

    def test_union_requires_matching_parameters(self):
        a = BloomFilter(expected_items=100, num_bits=2048, num_hashes=3)
        b = BloomFilter(expected_items=100, num_bits=4096, num_hashes=3)
        with pytest.raises(ValueError):
            a.union(b)

    def test_estimated_false_positive_rate_grows_with_fill(self):
        bloom = BloomFilter(expected_items=100, false_positive_rate=0.01)
        empty_estimate = bloom.estimated_false_positive_rate()
        bloom.update(f"k{i}".encode() for i in range(100))
        assert bloom.estimated_false_positive_rate() > empty_estimate

    def test_memory_footprint_matches_bits(self):
        bloom = BloomFilter(expected_items=100, num_bits=800, num_hashes=3)
        assert bloom.memory_bytes == 100


class TestBloomDigestFastPath:
    def test_no_false_negatives_with_digest_keys(self):
        bloom = BloomFilter(expected_items=5000, digest_keys=True)
        keys = _digests(0, 5000)
        bloom.add_many(keys)
        assert all(key in bloom for key in keys)

    def test_fp_rate_near_target_at_capacity(self):
        """Property test: digest fast path keeps the designed FP rate."""
        bloom = BloomFilter(expected_items=10_000, false_positive_rate=0.01)
        bloom.add_many(_digests(0, 10_000))
        probes = _digests(1_000_000, 20_000)
        rate = sum(bloom.contains_many(probes)) / len(probes)
        assert rate < 0.03  # target 1%, generous bound to avoid flakiness

    def test_digest_and_hashed_paths_agree_on_membership(self):
        """Same keys, both key-derivation modes: identical verdict semantics."""
        keys = _digests(0, 2000)
        absent = _digests(500_000, 2000)
        fast = BloomFilter(expected_items=4000, digest_keys=True)
        hashed = BloomFilter(expected_items=4000, digest_keys=False)
        fast.add_many(keys)
        hashed.add_many(keys)
        for bloom in (fast, hashed):
            assert all(key in bloom for key in keys)
            false_positives = sum(bloom.contains_many(absent))
            assert false_positives < len(absent) * 0.05

    def test_batch_apis_match_scalar_apis_exactly(self):
        keys = _digests(0, 300) + [f"short-{i}".encode() for i in range(100)]
        scalar = BloomFilter(expected_items=1000, num_bits=8192, num_hashes=5)
        batched = BloomFilter(expected_items=1000, num_bits=8192, num_hashes=5)
        for key in keys:
            scalar.add(key)
        batched.add_many(keys)
        assert scalar._bits == batched._bits
        assert scalar.count == batched.count
        probes = keys + _digests(900_000, 300)
        assert batched.contains_many(probes) == [key in scalar for key in probes]

    def test_contains_agrees_with_indexes_introspection(self):
        bloom = BloomFilter(expected_items=500)
        keys = _digests(0, 200)
        bloom.add_many(keys)
        for key in keys + _digests(10_000, 50):
            manual = all(bloom._get_bit(index) for index in bloom._indexes(key))
            assert manual == (key in bloom)

    def test_short_keys_use_hashed_path(self):
        bloom = BloomFilter(expected_items=100, digest_keys=True)
        bloom.add(b"short")
        assert b"short" in bloom
        assert b"other" not in bloom

    def test_union_requires_matching_digest_mode(self):
        a = BloomFilter(expected_items=100, num_bits=2048, num_hashes=3, digest_keys=True)
        b = BloomFilter(expected_items=100, num_bits=2048, num_hashes=3, digest_keys=False)
        with pytest.raises(ValueError):
            a.union(b)

    def test_fill_ratio_matches_per_byte_popcount(self):
        bloom = BloomFilter(expected_items=500)
        bloom.add_many(_digests(0, 400))
        reference = sum(bin(byte).count("1") for byte in bloom._bits) / bloom.num_bits
        assert bloom.fill_ratio() == pytest.approx(reference)
        assert bloom.fill_ratio() > 0

    def test_add_many_accepts_generators(self):
        bloom = BloomFilter(expected_items=100)
        bloom.add_many(key for key in _digests(0, 50))
        assert bloom.count == 50

    def test_generic_fallback_for_large_hash_counts(self):
        # num_hashes above the unroll cap uses the generic probe loop; batch
        # and scalar paths must still agree bit-for-bit.
        scalar = BloomFilter(expected_items=100, num_bits=65536, num_hashes=20)
        batched = BloomFilter(expected_items=100, num_bits=65536, num_hashes=20)
        assert scalar._kernels is None
        keys = _digests(0, 200)
        for key in keys:
            scalar.add(key)
        batched.add_many(keys)
        assert scalar._bits == batched._bits
        probes = keys + _digests(7000, 100)
        assert batched.contains_many(probes) == [key in scalar for key in probes]


class TestLRUCache:
    def test_capacity_validation(self):
        with pytest.raises(ValueError):
            LRUCache(0)

    def test_get_put_basic(self):
        cache = LRUCache(4)
        cache.put(b"a", 1)
        assert cache.get(b"a") == 1
        assert cache.get(b"missing") is None
        assert cache.get(b"missing", "default") == "default"

    def test_eviction_order_is_least_recently_used(self):
        cache = LRUCache(3)
        for key in (b"a", b"b", b"c"):
            cache.put(key)
        cache.get(b"a")          # refresh a
        cache.put(b"d")          # evicts b (the LRU)
        assert b"b" not in cache
        assert all(key in cache for key in (b"a", b"c", b"d"))

    def test_put_refreshes_recency(self):
        cache = LRUCache(2)
        cache.put(b"a")
        cache.put(b"b")
        cache.put(b"a")          # refresh
        cache.put(b"c")          # evicts b
        assert b"a" in cache and b"b" not in cache

    def test_put_returns_evicted_entry(self):
        cache = LRUCache(1)
        assert cache.put(b"a", 1) is None
        assert cache.put(b"b", 2) == (b"a", 1)

    def test_eviction_callback_invoked(self):
        evicted = []
        cache = LRUCache(2, on_evict=lambda key, value: evicted.append(key))
        for key in (b"a", b"b", b"c", b"d"):
            cache.put(key)
        assert evicted == [b"a", b"b"]
        assert cache.evictions == 2

    def test_hit_miss_counters_and_ratio(self):
        cache = LRUCache(2)
        cache.put(b"a")
        cache.get(b"a")
        cache.get(b"a")
        cache.get(b"x")
        assert cache.hits == 2 and cache.misses == 1
        assert cache.hit_ratio() == pytest.approx(2 / 3)

    def test_contains_and_peek_do_not_touch_counters(self):
        cache = LRUCache(2)
        cache.put(b"a", 1)
        assert b"a" in cache
        assert cache.peek(b"a") == 1
        assert cache.hits == 0 and cache.misses == 0

    def test_lru_and_mru_keys(self):
        cache = LRUCache(3)
        for key in (b"a", b"b", b"c"):
            cache.put(key)
        assert cache.lru_key() == b"a"
        assert cache.mru_key() == b"c"
        cache.get(b"a")
        assert cache.lru_key() == b"b"
        assert cache.mru_key() == b"a"

    def test_remove_and_clear(self):
        cache = LRUCache(3)
        cache.put(b"a")
        assert cache.remove(b"a") is True
        assert cache.remove(b"a") is False
        cache.put(b"b")
        cache.clear()
        assert len(cache) == 0

    def test_iteration_order_lru_to_mru(self):
        cache = LRUCache(3)
        for key in (b"a", b"b", b"c"):
            cache.put(key)
        cache.get(b"a")
        assert list(cache) == [b"b", b"c", b"a"]

    def test_never_exceeds_capacity(self):
        cache = LRUCache(10)
        for index in range(1000):
            cache.put(index)
            assert len(cache) <= 10
        assert cache.is_full

    def test_stats_snapshot(self):
        cache = LRUCache(2)
        cache.put(b"a")
        cache.get(b"a")
        stats = cache.stats()
        assert stats["size"] == 1 and stats["hits"] == 1 and stats["capacity"] == 2


class TestSingleKeyKernels:
    """contains_one / add_one vs. the canonical single-key methods."""

    def test_contains_one_agrees_with_contains(self):
        bloom = BloomFilter(expected_items=500)
        present = [bytes([i]) * 20 for i in range(60)]
        absent = [bytes([200 - i]) * 20 for i in range(60)]
        for key in present:
            bloom.add(key)
        for key in present + absent:
            assert bloom.contains_one(key) == (key in bloom)

    def test_add_one_plus_count_matches_add(self):
        reference = BloomFilter(expected_items=500)
        fast = BloomFilter(expected_items=500)
        keys = [bytes([i, i + 1]) * 10 for i in range(50)]
        for key in keys:
            reference.add(key)
            fast.add_one(key)
        fast.count_inserts(len(keys))
        assert fast._bits == reference._bits
        assert fast._count == reference._count

    def test_kernels_survive_clear_and_union(self):
        bloom = BloomFilter(expected_items=300)
        key = b"x" * 20
        bloom.add(key)
        assert bloom.contains_one(key)
        bloom.clear()
        assert not bloom.contains_one(key)  # bound bits were zeroed in place
        other = BloomFilter(
            expected_items=bloom.expected_items,
            num_bits=bloom.num_bits,
            num_hashes=bloom.num_hashes,
        )
        other.add(key)
        merged = bloom.union(other)
        assert merged.contains_one(key)

    def test_non_digest_filter_falls_back(self):
        bloom = BloomFilter(expected_items=200, digest_keys=False)
        bloom.add(b"short")
        assert bloom.contains_one(b"short")
        assert not bloom.contains_one(b"other")


class TestLRUHotPaths:
    def test_touch_matches_get_accounting(self):
        reference = LRUCache(capacity=4)
        fast = LRUCache(capacity=4)
        for cache in (reference, fast):
            for key in ("a", "b", "c"):
                cache.put(key, True)
        assert fast.touch("a") == (reference.get("a") is not None)
        assert fast.touch("zz") == (reference.get("zz") is not None)
        assert fast.stats() == reference.stats()
        assert list(fast) == list(reference)

    def test_put_new_matches_put_for_absent_keys(self):
        evicted_fast, evicted_reference = [], []
        reference = LRUCache(capacity=2, on_evict=lambda k, v: evicted_reference.append(k))
        fast = LRUCache(capacity=2, on_evict=lambda k, v: evicted_fast.append(k))
        for i in range(5):
            reference.put(f"k{i}", i)
            fast.put_new(f"k{i}", i)
        assert fast.stats() == reference.stats()
        assert list(fast) == list(reference)
        assert evicted_fast == evicted_reference

    def test_data_exposes_backing_dict(self):
        cache = LRUCache(capacity=3)
        cache.put("a", 1)
        assert "a" in cache.data
        assert cache.data is cache.data  # stable object
