"""Tests for the centralized baseline indexes."""

from __future__ import annotations

import pytest

from repro.baselines.chunkstash import ChunkStashIndex
from repro.baselines.ddfs import DDFSIndex
from repro.baselines.disk_index import DiskIndex
from repro.baselines.single_node import SingleNodeHashServer
from repro.core.config import HashNodeConfig
from repro.dedup.fingerprint import synthetic_fingerprint
from repro.dedup.index import InMemoryChunkIndex


ALL_BASELINES = [
    lambda: DiskIndex(cache_entries=64),
    lambda: DDFSIndex(bloom_expected_items=10_000, cache_containers=8, container_fingerprints=64),
    lambda: ChunkStashIndex(cache_entries=64),
    lambda: SingleNodeHashServer(HashNodeConfig(ram_cache_entries=64, bloom_expected_items=10_000)),
]


@pytest.mark.parametrize("factory", ALL_BASELINES)
class TestChunkIndexContract:
    """Every baseline must behave like a correct chunk index."""

    def test_first_unique_then_duplicate(self, factory):
        index = factory()
        fingerprint = synthetic_fingerprint(1)
        assert index.lookup(fingerprint).is_duplicate is False
        assert index.lookup(fingerprint).is_duplicate is True
        assert len(index) == 1

    def test_contains_is_readonly(self, factory):
        index = factory()
        fingerprint = synthetic_fingerprint(2)
        assert fingerprint not in index
        assert len(index) == 0
        index.lookup(fingerprint)
        assert fingerprint in index

    def test_verdicts_match_oracle(self, factory):
        index = factory()
        oracle = InMemoryChunkIndex()
        fingerprints = [synthetic_fingerprint(i % 40) for i in range(300)]
        for fingerprint in fingerprints:
            assert index.lookup(fingerprint).is_duplicate == oracle.lookup(fingerprint).is_duplicate
        assert len(index) == len(oracle)

    def test_latency_is_positive(self, factory):
        index = factory()
        result = index.lookup(synthetic_fingerprint(3))
        assert result.latency > 0.0


class TestDiskIndex:
    def test_disk_misses_pay_seek_latency(self):
        index = DiskIndex(cache_entries=4)
        target = synthetic_fingerprint(0)
        index.lookup(target)
        # Evict the target from the tiny cache.
        for i in range(1, 50):
            index.lookup(synthetic_fingerprint(i))
        result = index.lookup(target)
        assert result.is_duplicate is True
        assert result.latency > index.device.spec.seek_latency

    def test_cache_hit_avoids_disk(self):
        index = DiskIndex(cache_entries=64)
        target = synthetic_fingerprint(0)
        index.lookup(target)
        hit = index.lookup(target)
        assert hit.latency < index.device.spec.seek_latency


class TestDDFSIndex:
    def test_summary_vector_short_circuits_new_chunks(self):
        index = DDFSIndex(bloom_expected_items=10_000)
        index.lookup(synthetic_fingerprint(1))
        assert index.counters.get("summary_negative") == 1

    def test_locality_cache_serves_neighbours_without_disk(self):
        index = DDFSIndex(
            bloom_expected_items=10_000, container_fingerprints=32, cache_containers=4
        )
        first_pass = [synthetic_fingerprint(i) for i in range(32)]
        for fingerprint in first_pass:
            index.lookup(fingerprint)
        # Second pass: the first lookup misses the cache and prefetches the
        # container; the rest should be cache hits.
        for fingerprint in first_pass:
            index.lookup(fingerprint)
        assert index.counters.get("cache_hits") >= 31
        assert index.cache_hit_ratio() > 0.9

    def test_validation(self):
        with pytest.raises(ValueError):
            DDFSIndex(container_fingerprints=0)


class TestChunkStash:
    def test_negative_lookup_needs_no_flash_read(self):
        index = ChunkStashIndex()
        index.lookup(synthetic_fingerprint(1))
        assert index.counters.get("flash_reads") == 0

    def test_duplicate_after_cache_eviction_costs_one_flash_read(self):
        index = ChunkStashIndex(cache_entries=4)
        target = synthetic_fingerprint(0)
        index.lookup(target)
        for i in range(1, 20):
            index.lookup(synthetic_fingerprint(i))
        before = index.counters.get("flash_reads")
        result = index.lookup(target)
        assert result.is_duplicate is True
        assert index.counters.get("flash_reads") == before + 1

    def test_flash_writes_are_amortised(self):
        index = ChunkStashIndex(entry_size=64, page_size=4096)
        for i in range(640):
            index.lookup(synthetic_fingerprint(i))
        # 640 new entries at 64 per page -> about 10 page writes.
        assert 8 <= index.counters.get("flash_writes") <= 12

    def test_ram_footprint_is_compact(self):
        index = ChunkStashIndex()
        for i in range(1000):
            index.lookup(synthetic_fingerprint(i))
        assert index.ram_bytes() == 10_000


class TestSingleNodeServer:
    def test_is_one_hybrid_node(self):
        server = SingleNodeHashServer(
            HashNodeConfig(ram_cache_entries=128, bloom_expected_items=10_000)
        )
        for i in range(100):
            server.lookup(synthetic_fingerprint(i % 25))
        snapshot = server.snapshot()
        assert snapshot.entries == 25
        assert snapshot.lookups == 100
        assert server.mean_latency() > 0.0

    def test_faster_than_disk_index_on_redundant_workload(self):
        fingerprints = [synthetic_fingerprint(i % 50) for i in range(500)]
        hybrid = SingleNodeHashServer(
            HashNodeConfig(ram_cache_entries=1024, bloom_expected_items=10_000)
        )
        disk = DiskIndex(cache_entries=16)
        hybrid_total = sum(hybrid.lookup(fp).latency for fp in fingerprints)
        disk_total = sum(disk.lookup(fp).latency for fp in fingerprints)
        assert hybrid_total * 10 < disk_total
