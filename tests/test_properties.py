"""Property-based tests (hypothesis) for core data structures and invariants."""

from __future__ import annotations

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.cluster import SHHCCluster
from repro.core.config import ClusterConfig, HashNodeConfig
from repro.core.hash_node import HybridHashNode
from repro.core.partition import ConsistentHashRing, RangePartitioner
from repro.dedup.chunking import ContentDefinedChunker, FixedSizeChunker
from repro.dedup.fingerprint import fingerprint_data, synthetic_fingerprint
from repro.dedup.index import InMemoryChunkIndex
from repro.dedup.pipeline import DedupPipeline
from repro.storage.bloom import BloomFilter
from repro.storage.cuckoo import CuckooHashTable
from repro.storage.hashstore import SSDHashStore
from repro.storage.lru import LRUCache
from repro.storage.object_store import CloudObjectStore

# Keep generated examples small enough that the whole module stays fast.
FAST = settings(max_examples=40, deadline=None)

keys = st.binary(min_size=1, max_size=24)
key_lists = st.lists(keys, min_size=1, max_size=120)


class TestBloomProperties:
    @FAST
    @given(key_lists)
    def test_no_false_negatives_ever(self, inserted):
        bloom = BloomFilter(expected_items=512, false_positive_rate=0.01)
        for key in inserted:
            bloom.add(key)
        assert all(key in bloom for key in inserted)

    @FAST
    @given(key_lists, key_lists)
    def test_union_contains_both_sides(self, left_keys, right_keys):
        left = BloomFilter(expected_items=256, num_bits=4096, num_hashes=5)
        right = BloomFilter(expected_items=256, num_bits=4096, num_hashes=5)
        for key in left_keys:
            left.add(key)
        for key in right_keys:
            right.add(key)
        merged = left.union(right)
        assert all(key in merged for key in left_keys + right_keys)


class TestLRUProperties:
    @FAST
    @given(st.lists(st.tuples(st.integers(0, 50), st.integers()), max_size=200), st.integers(1, 16))
    def test_size_never_exceeds_capacity_and_matches_reference(self, operations, capacity):
        cache = LRUCache(capacity)
        reference: dict = {}
        order: list = []
        for key, value in operations:
            cache.put(key, value)
            if key in reference:
                order.remove(key)
            reference[key] = value
            order.append(key)
            if len(order) > capacity:
                evicted = order.pop(0)
                del reference[evicted]
            assert len(cache) <= capacity
        assert set(iter(cache)) == set(reference)
        for key, value in reference.items():
            assert cache.peek(key) == value

    @FAST
    @given(st.lists(st.integers(0, 30), min_size=1, max_size=200), st.integers(1, 8))
    def test_most_recently_touched_key_is_never_the_next_eviction(self, touches, capacity):
        cache = LRUCache(capacity)
        for key in touches:
            cache.put(key)
            assert cache.mru_key() == key
            if len(cache) > 1:
                assert cache.lru_key() != key


class TestHashStoreProperties:
    @FAST
    @given(st.dictionaries(keys, st.integers(), max_size=150))
    def test_behaves_like_a_dict(self, mapping):
        store = SSDHashStore(num_buckets=64)
        table = CuckooHashTable(initial_buckets=16)
        for key, value in mapping.items():
            store.put(key, value)
            table.put(key, value)
        assert len(store) == len(mapping)
        assert len(table) == len(mapping)
        for key, value in mapping.items():
            assert store.get(key) == value
            assert table.get(key) == value
        assert dict(store.items()) == mapping
        assert dict(table.items()) == mapping

    @FAST
    @given(st.lists(keys, min_size=1, max_size=100), st.data())
    def test_removal_really_removes(self, inserted, data):
        store = SSDHashStore(num_buckets=32)
        for key in inserted:
            store.put(key, True)
        victim = data.draw(st.sampled_from(inserted))
        store.remove(victim)
        assert victim not in store


class TestChunkingProperties:
    @FAST
    @given(st.binary(max_size=30_000))
    def test_fixed_chunks_reconstruct_input(self, data):
        chunks = list(FixedSizeChunker(512).chunk(data))
        assert b"".join(chunk.data for chunk in chunks) == data
        assert all(chunk.size <= 512 for chunk in chunks)

    @FAST
    @given(st.binary(max_size=30_000))
    def test_content_defined_chunks_reconstruct_input(self, data):
        chunker = ContentDefinedChunker(average_size=512)
        chunks = list(chunker.chunk(data))
        assert b"".join(chunk.data for chunk in chunks) == data
        for chunk in chunks[:-1]:
            assert chunk.size <= chunker.max_size

    @FAST
    @given(st.binary(min_size=1, max_size=5_000))
    def test_fingerprints_are_deterministic(self, data):
        assert fingerprint_data(data) == fingerprint_data(data)


class TestPartitionProperties:
    @FAST
    @given(st.integers(1, 12), st.lists(st.integers(0, 10_000), min_size=1, max_size=100))
    def test_every_fingerprint_has_one_owner_in_the_cluster(self, num_nodes, identities):
        nodes = [f"n{i}" for i in range(num_nodes)]
        range_partitioner = RangePartitioner(nodes)
        ring = ConsistentHashRing(nodes, virtual_nodes=16)
        for identity in identities:
            fingerprint = synthetic_fingerprint(identity)
            assert range_partitioner.owner(fingerprint) in nodes
            assert ring.owner(fingerprint) in nodes

    @FAST
    @given(st.integers(2, 8), st.lists(st.integers(0, 10_000), min_size=1, max_size=60), st.integers(1, 4))
    def test_replica_sets_are_distinct_and_led_by_the_owner(self, num_nodes, identities, factor):
        nodes = [f"n{i}" for i in range(num_nodes)]
        ring = ConsistentHashRing(nodes, virtual_nodes=16)
        for identity in identities:
            fingerprint = synthetic_fingerprint(identity)
            owners = ring.owners(fingerprint, factor)
            assert owners[0] == ring.owner(fingerprint)
            assert len(owners) == len(set(owners)) == min(factor, num_nodes)


class TestDedupProperties:
    @FAST
    @given(st.lists(st.integers(0, 200), min_size=1, max_size=300))
    def test_cluster_agrees_with_oracle_on_every_lookup(self, identities):
        cluster = SHHCCluster(
            ClusterConfig(
                num_nodes=3,
                node=HashNodeConfig(ram_cache_entries=64, bloom_expected_items=5_000, ssd_buckets=256),
            )
        )
        oracle = InMemoryChunkIndex()
        for identity in identities:
            fingerprint = synthetic_fingerprint(identity)
            assert (
                cluster.lookup(fingerprint).is_duplicate
                == oracle.lookup(fingerprint).is_duplicate
            )
        assert len(cluster) == len(oracle)

    @FAST
    @given(st.lists(st.integers(0, 100), min_size=1, max_size=200), st.integers(2, 64))
    def test_node_verdicts_independent_of_cache_size(self, identities, cache_entries):
        reference = HybridHashNode(
            "ref", HashNodeConfig(ram_cache_entries=10_000, bloom_expected_items=5_000, ssd_buckets=256)
        )
        node = HybridHashNode(
            "n", HashNodeConfig(ram_cache_entries=cache_entries, bloom_expected_items=5_000, ssd_buckets=256)
        )
        for identity in identities:
            fingerprint = synthetic_fingerprint(identity)
            assert node.lookup(fingerprint).is_duplicate == reference.lookup(fingerprint).is_duplicate

    @FAST
    @given(st.lists(st.binary(min_size=1, max_size=600), min_size=1, max_size=12))
    def test_pipeline_restores_exactly_what_was_backed_up(self, objects):
        pipeline = DedupPipeline(InMemoryChunkIndex(), CloudObjectStore(), FixedSizeChunker(64))
        for index, data in enumerate(objects):
            pipeline.backup(f"object-{index}", data)
        for index, data in enumerate(objects):
            assert pipeline.restore(f"object-{index}") == data

    @FAST
    @given(st.binary(min_size=1, max_size=2_000), st.integers(2, 6))
    def test_repeated_backups_never_grow_physical_storage(self, data, copies):
        pipeline = DedupPipeline(InMemoryChunkIndex(), CloudObjectStore(), FixedSizeChunker(128))
        pipeline.backup("copy-0", data)
        physical = pipeline.stats.physical_bytes
        for index in range(1, copies):
            pipeline.backup(f"copy-{index}", data)
            assert pipeline.stats.physical_bytes == physical


class TestCrashRecoveryProperties:
    """Kill/restart crash consistency: no acknowledged insert is ever lost."""

    @settings(max_examples=25, deadline=None)
    @given(
        st.lists(st.integers(0, 60), min_size=1, max_size=150),
        st.integers(0, 150),
        st.sampled_from([0, 8, 64]),
    )
    def test_restart_at_any_offset_loses_no_acknowledged_insert(
        self, identities, kill_offset, snapshot_every
    ):
        import tempfile

        from repro.core.persistence import NodePersistence

        config = HashNodeConfig(
            ram_cache_entries=64, bloom_expected_items=2_048, ssd_buckets=128
        )
        twin = HybridHashNode("twin", config)  # never crashes, no persistence
        kill_offset = min(kill_offset, len(identities))
        with tempfile.TemporaryDirectory() as directory:
            persistence = NodePersistence(
                directory, snapshot_every=snapshot_every
            )
            node = HybridHashNode("node", config, persistence=persistence)
            acknowledged = []
            for position, identity in enumerate(identities):
                if position == kill_offset:
                    node.kill()
                    report = node.restart()
                    assert report is not None
                    # Zero lost acknowledged inserts at ANY kill offset.
                    assert all(f in node for f in acknowledged)
                fingerprint = synthetic_fingerprint(identity)
                reply = node.lookup(fingerprint)
                acknowledged.append(fingerprint)
                # Verdicts keep matching a node that never crashed.
                assert reply.is_duplicate == twin.lookup(fingerprint).is_duplicate
            if kill_offset == len(identities):
                node.kill()
                report = node.restart()
                assert report is not None
                assert all(f in node for f in acknowledged)
            # The restarted node converges to the never-crashed twin.
            assert len(node.store) == len(twin.store)
            assert set(node.store.keys()) == set(twin.store.keys())
            persistence.close()
