"""Tests for the kill/restart experiment and the ``restart`` scenario preset."""

from __future__ import annotations

import os

import pytest

from repro.analysis.experiments.restart import RECOVERING_PHASE, RestartResult, run_restart
from repro.scenarios import run_scenario

SCALE = 0.0005  # ~20k fingerprints: big enough for distinct phases, fast enough for CI


class TestRunRestart:
    def test_warm_restart_recovers_with_full_accuracy(self):
        result = run_restart(scale=SCALE, seed=0)
        assert isinstance(result, RestartResult)
        assert result.accuracy == 1.0
        assert result.acknowledged > 0
        assert result.lost_acknowledged == 0
        assert result.acknowledged_accuracy == 1.0
        assert result.recovery_time > 0
        assert result.recovery_wall_seconds > 0
        assert result.recovered_entries > 0
        assert result.snapshot_loaded
        assert result.counters["kills"] == 1 and result.counters["restarts"] == 1
        assert result.counters["node_recoveries"] == 1
        # All four phases saw traffic.
        for phase in ("warmup", "steady", "degraded", RECOVERING_PHASE):
            assert result.phases[phase].count > 0
        rendered = result.render()
        assert "recovery time ms" in rendered and "degraded p99" in rendered

    def test_cold_restart_replays_full_log_and_charges_more(self):
        warm = run_restart(scale=SCALE, seed=0, warm_restart=True)
        cold = run_restart(scale=SCALE, seed=0, warm_restart=False)
        assert not cold.snapshot_loaded
        assert cold.snapshot_every == 0
        assert cold.replayed_records == cold.recovered_entries  # full replay
        assert warm.replayed_records < cold.replayed_records
        # The snapshot path must be measurably cheaper on the simulated clock.
        assert warm.recovery_time < cold.recovery_time
        assert cold.lost_acknowledged == 0 and cold.accuracy == 1.0

    def test_deterministic_across_runs(self):
        first = run_restart(scale=SCALE, seed=3)
        second = run_restart(scale=SCALE, seed=3)
        assert first.recovery_time == second.recovery_time
        assert first.counters == second.counters
        assert {p: first.phases[p].p99 for p in first.phases} == {
            p: second.phases[p].p99 for p in second.phases
        }

    def test_k1_downtime_is_honest_but_loses_nothing_acknowledged(self):
        result = run_restart(scale=SCALE, seed=0, replication_factor=1)
        # With k=1 the victim's shard is unservable while it is down...
        assert result.unserved > 0
        assert result.accuracy < 1.0
        # ...but persistence still brings back every acknowledged insert.
        assert result.lost_acknowledged == 0
        assert result.acknowledged_accuracy == 1.0

    def test_data_dir_keeps_persistence_files(self, tmp_path):
        data_dir = str(tmp_path / "restart-run")
        result = run_restart(scale=SCALE, seed=0, data_dir=data_dir)
        assert result.accuracy == 1.0
        assert sorted(os.listdir(data_dir)) == [
            f"hashnode-{i}" for i in range(result.num_nodes)
        ]
        victim_dir = os.path.join(data_dir, result.victim)
        assert "containers.log" in os.listdir(victim_dir)

    def test_validation(self):
        with pytest.raises(ValueError):
            run_restart(scale=SCALE, downtime=0)
        with pytest.raises(ValueError):
            run_restart(scale=SCALE, kill_batch=0)
        with pytest.raises(ValueError):
            run_restart(scale=SCALE, kill_batch=10_000)  # past the last batch
        with pytest.raises(ValueError):
            run_restart(scale=SCALE, snapshot_every=0, warm_restart=True)


class TestRestartPreset:
    def test_preset_metrics_schema(self):
        result = run_scenario("restart", scale=SCALE)
        metrics = result.metrics
        assert metrics["dedup_accuracy"] == 1.0
        assert metrics["lost_acknowledged"] == 0
        assert metrics["acknowledged_accuracy"] == 1.0
        assert metrics["recovery_time_ms"] > 0
        assert metrics["snapshot_loaded"] is True
        assert metrics["kills"] == 1 and metrics["restarts"] == 1
        assert "degraded_p99_latency_us" in metrics
        assert "recovering_p99_latency_us" in metrics

    def test_preset_client_knobs(self):
        result = run_scenario(
            "restart",
            scale=SCALE,
            warm_restart=False,
            downtime=3,
            snapshot_every=None,
        )
        detail = result.detail
        assert not detail.warm_restart
        assert detail.restart_batch - detail.kill_batch == 3
        assert result.metrics["snapshot_loaded"] is False

    def test_preset_matches_runner(self):
        via_preset = run_scenario("restart", scale=SCALE, seed=1).detail
        direct = run_restart(scale=SCALE, seed=1)
        assert via_preset.recovery_time == direct.recovery_time
        assert via_preset.counters == direct.counters
