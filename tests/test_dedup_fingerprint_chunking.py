"""Tests for fingerprints, chunkers and the rolling hash."""

from __future__ import annotations

import hashlib
import os
import random

import pytest

from repro.dedup.chunking import Chunk, ContentDefinedChunker, FixedSizeChunker
from repro.dedup.fingerprint import (
    FINGERPRINT_BYTES,
    Fingerprint,
    fingerprint_data,
    synthetic_fingerprint,
)
from repro.dedup.rabin import RabinRollingHash


class TestFingerprint:
    def test_fingerprint_matches_sha1(self):
        data = b"some chunk of data"
        fingerprint = fingerprint_data(data)
        assert fingerprint.digest == hashlib.sha1(data).digest()
        assert fingerprint.chunk_size == len(data)

    def test_digest_length_validation(self):
        with pytest.raises(ValueError):
            Fingerprint(digest=b"too short", chunk_size=10)
        with pytest.raises(ValueError):
            Fingerprint(digest=b"\x00" * FINGERPRINT_BYTES, chunk_size=-1)

    def test_hex_rendering(self):
        fingerprint = fingerprint_data(b"abc")
        assert fingerprint.hex == hashlib.sha1(b"abc").hexdigest()

    def test_prefix_int_range_and_validation(self):
        fingerprint = fingerprint_data(b"abc")
        assert 0 <= fingerprint.prefix_int(16) < 2 ** 16
        assert 0 <= fingerprint.prefix_int(64) < 2 ** 64
        with pytest.raises(ValueError):
            fingerprint.prefix_int(0)
        with pytest.raises(ValueError):
            fingerprint.prefix_int(161)

    def test_prefix_int_matches_digest_bits(self):
        fingerprint = fingerprint_data(b"abc")
        full = int.from_bytes(fingerprint.digest, "big")
        assert fingerprint.prefix_int(8) == full >> 152

    def test_synthetic_fingerprint_deterministic_and_distinct(self):
        assert synthetic_fingerprint(7) == synthetic_fingerprint(7)
        assert synthetic_fingerprint(7) != synthetic_fingerprint(8)
        assert synthetic_fingerprint(7, 4096).chunk_size == 4096

    def test_fingerprints_are_hashable_and_frozen(self):
        fingerprint = synthetic_fingerprint(1)
        assert fingerprint in {fingerprint}
        with pytest.raises(AttributeError):
            fingerprint.chunk_size = 0  # type: ignore[misc]


class TestFixedSizeChunker:
    def test_exact_multiple(self):
        chunker = FixedSizeChunker(4)
        chunks = list(chunker.chunk(b"abcdefgh"))
        assert [chunk.data for chunk in chunks] == [b"abcd", b"efgh"]
        assert [chunk.offset for chunk in chunks] == [0, 4]

    def test_trailing_partial_chunk(self):
        chunks = list(FixedSizeChunker(4).chunk(b"abcdefg"))
        assert chunks[-1].data == b"efg"
        assert chunks[-1].size == 3

    def test_empty_input_yields_nothing(self):
        assert list(FixedSizeChunker(4).chunk(b"")) == []

    def test_reconstruction(self):
        data = os.urandom(10_000)
        chunks = list(FixedSizeChunker(512).chunk(data))
        assert b"".join(chunk.data for chunk in chunks) == data

    def test_validation(self):
        with pytest.raises(ValueError):
            FixedSizeChunker(0)

    def test_chunk_stream_equivalent_to_concatenation(self):
        blocks = [os.urandom(300) for _ in range(5)]
        chunker = FixedSizeChunker(128)
        streamed = [chunk.data for chunk in chunker.chunk_stream(blocks)]
        direct = [chunk.data for chunk in chunker.chunk(b"".join(blocks))]
        assert streamed == direct


class TestContentDefinedChunker:
    def test_reconstruction(self):
        data = os.urandom(50_000)
        chunker = ContentDefinedChunker(average_size=1024)
        chunks = list(chunker.chunk(data))
        assert b"".join(chunk.data for chunk in chunks) == data

    def test_chunk_size_bounds_respected(self):
        data = os.urandom(100_000)
        chunker = ContentDefinedChunker(average_size=1024)
        chunks = list(chunker.chunk(data))
        for chunk in chunks[:-1]:  # the final chunk may be arbitrarily small
            assert chunker.min_size <= chunk.size <= chunker.max_size

    def test_average_size_in_right_ballpark(self):
        rng = random.Random(5)
        data = bytes(rng.randrange(256) for _ in range(200_000))
        chunker = ContentDefinedChunker(average_size=1024)
        sizes = chunker.chunk_sizes(data)
        mean = sum(sizes) / len(sizes)
        assert 512 <= mean <= 2048

    def test_boundaries_stable_under_prefix_insertion(self):
        rng = random.Random(11)
        data = bytes(rng.randrange(256) for _ in range(30_000))
        chunker = ContentDefinedChunker(average_size=512)
        original = {chunk.data for chunk in chunker.chunk(data)}
        shifted = {chunk.data for chunk in chunker.chunk(os.urandom(137) + data)}
        # Most chunks should be identical despite the shifted offsets, which
        # is the whole point of content-defined chunking.
        assert len(original & shifted) >= len(original) * 0.6

    def test_empty_input(self):
        assert list(ContentDefinedChunker(average_size=256).chunk(b"")) == []

    def test_validation(self):
        with pytest.raises(ValueError):
            ContentDefinedChunker(average_size=100)  # not a power of two
        with pytest.raises(ValueError):
            ContentDefinedChunker(average_size=32)   # too small
        with pytest.raises(ValueError):
            ContentDefinedChunker(average_size=1024, min_size=2048)


class TestRabinRollingHash:
    def test_same_window_same_hash(self):
        a = RabinRollingHash(window_size=16)
        b = RabinRollingHash(window_size=16)
        data = os.urandom(64)
        a.update_bytes(data)
        b.update_bytes(data)
        assert a.value == b.value

    def test_hash_depends_only_on_window(self):
        window = 16
        tail = os.urandom(window)
        a = RabinRollingHash(window)
        b = RabinRollingHash(window)
        a.update_bytes(os.urandom(100) + tail)
        b.update_bytes(os.urandom(50) + tail)
        assert a.value == b.value

    def test_window_filled_flag(self):
        rolling = RabinRollingHash(window_size=4)
        rolling.update_bytes(b"abc")
        assert not rolling.window_filled
        rolling.update(ord("d"))
        assert rolling.window_filled

    def test_reset(self):
        rolling = RabinRollingHash(window_size=4)
        rolling.update_bytes(b"abcd")
        rolling.reset()
        assert rolling.value == 0
        assert not rolling.window_filled

    def test_byte_validation(self):
        rolling = RabinRollingHash()
        with pytest.raises(ValueError):
            rolling.update(300)
        with pytest.raises(ValueError):
            RabinRollingHash(window_size=0)
