"""Tests for generational workloads, the simulation monitor and the CLI."""

from __future__ import annotations

import os

import pytest

from repro.cli import main as cli_main
from repro.core.cluster import SHHCCluster
from repro.core.config import ClusterConfig, HashNodeConfig
from repro.simulation.engine import Simulator
from repro.simulation.monitor import Monitor, TimeSeries
from repro.simulation.process import run_process
from repro.workloads.generations import GenerationConfig, GenerationalWorkload
from repro.workloads.traces import measure_trace


class TestGenerationalWorkload:
    def test_generation_count_and_sizes(self):
        workload = GenerationalWorkload(
            GenerationConfig(initial_chunks=1000, generations=5, modify_fraction=0.05, growth_fraction=0.02)
        )
        assert len(workload) == 5
        sizes = [len(generation) for generation in workload.generations]
        assert sizes[0] == 1000
        assert all(later >= earlier for earlier, later in zip(sizes, sizes[1:]))

    def test_first_generation_is_all_new(self):
        workload = GenerationalWorkload(GenerationConfig(initial_chunks=500, generations=3))
        redundancy = workload.per_generation_redundancy()
        assert redundancy[0] == 0.0

    def test_later_generations_match_configured_churn(self):
        config = GenerationConfig(
            initial_chunks=2000, generations=4, modify_fraction=0.05, growth_fraction=0.01
        )
        workload = GenerationalWorkload(config)
        redundancy = workload.per_generation_redundancy()
        for generation_number in range(1, 4):
            # ~5% modified + ~1% growth => ~94% of each generation is redundant.
            assert redundancy[generation_number] == pytest.approx(0.94, abs=0.02)

    def test_expected_dedup_ratio_reflects_generations(self):
        workload = GenerationalWorkload(
            GenerationConfig(initial_chunks=1000, generations=5, modify_fraction=0.0, growth_fraction=0.0)
        )
        # Identical full backups: logical = 5x physical.
        assert workload.expected_dedup_ratio() == pytest.approx(5.0)

    def test_fingerprint_stream_measured_redundancy(self):
        config = GenerationConfig(
            initial_chunks=800, generations=3, modify_fraction=0.1, growth_fraction=0.0
        )
        workload = GenerationalWorkload(config)
        stats = measure_trace(workload.fingerprint_stream())
        assert stats.fingerprints == workload.total_chunks()
        assert stats.unique_fingerprints == workload.unique_chunks()

    def test_deterministic_for_same_seed(self):
        a = GenerationalWorkload(GenerationConfig(initial_chunks=300, generations=3, seed=9))
        b = GenerationalWorkload(GenerationConfig(initial_chunks=300, generations=3, seed=9))
        assert [g.identities for g in a.generations] == [g.identities for g in b.generations]

    def test_cluster_sees_expected_cross_generation_redundancy(self):
        config = GenerationConfig(
            initial_chunks=500, generations=4, modify_fraction=0.05, growth_fraction=0.0
        )
        workload = GenerationalWorkload(config)
        cluster = SHHCCluster(
            ClusterConfig(
                num_nodes=4,
                node=HashNodeConfig(ram_cache_entries=4096, bloom_expected_items=100_000),
            )
        )
        results = cluster.lookup_batch(list(workload.fingerprint_stream()))
        duplicates = sum(1 for result in results if result.is_duplicate)
        expected_duplicates = workload.total_chunks() - workload.unique_chunks()
        assert duplicates == expected_duplicates

    def test_validation(self):
        with pytest.raises(ValueError):
            GenerationConfig(initial_chunks=0)
        with pytest.raises(ValueError):
            GenerationConfig(generations=0)
        with pytest.raises(ValueError):
            GenerationConfig(modify_fraction=1.5)
        with pytest.raises(ValueError):
            GenerationConfig(growth_fraction=-0.1)


class TestMonitor:
    def test_samples_at_fixed_interval(self):
        sim = Simulator()
        counter = {"value": 0}

        def worker():
            for _ in range(10):
                yield sim.timeout(1.0)
                counter["value"] += 1

        run_process(sim, worker())
        monitor = Monitor(sim, interval=1.0)
        series = monitor.add_probe("count", lambda: counter["value"])
        monitor.start()
        sim.run()
        assert len(series) >= 10
        assert series.values()[-1] == pytest.approx(10)
        assert series.maximum() == 10
        assert series.times() == sorted(series.times())

    def test_monitor_does_not_keep_simulation_alive(self):
        sim = Simulator()
        sim.schedule(1.0, lambda: None)
        monitor = Monitor(sim, interval=0.1)
        monitor.add_probe("constant", lambda: 1.0)
        monitor.start()
        sim.run(max_events=10_000)
        # The calendar must drain (the monitor stops rescheduling itself).
        assert sim.pending_events == 0

    def test_stop_and_sample_now(self):
        sim = Simulator()
        monitor = Monitor(sim, interval=1.0)
        series = monitor.add_probe("x", lambda: 42.0)
        values = monitor.sample_now()
        assert values == {"x": 42.0}
        monitor.stop()
        assert series.latest() == 42.0
        assert series.mean() == 42.0

    def test_duplicate_probe_rejected(self):
        monitor = Monitor(Simulator(), interval=1.0)
        monitor.add_probe("x", lambda: 0.0)
        with pytest.raises(ValueError):
            monitor.add_probe("x", lambda: 0.0)
        with pytest.raises(ValueError):
            Monitor(Simulator(), interval=0.0)

    def test_empty_series_helpers(self):
        series = TimeSeries("empty")
        assert series.latest() is None
        assert series.maximum() == 0.0
        assert series.mean() == 0.0


class TestCatalogChunkingResolution:
    def test_recorded_parameters_win(self, tmp_path):
        import json

        from repro.cli import _catalog_chunking

        catalog = tmp_path / "cat.json"
        record = {"strategy": "cdc", "engine": "gear", "average_size": 4096}
        catalog.write_text(json.dumps({"chunking": record}))
        assert _catalog_chunking(str(catalog)) == record

    def test_legacy_catalog_resolves_to_rabin(self, tmp_path):
        # Catalogues written before engine selection existed could only have
        # been chunked by the Rabin implementation; defaulting them to gear
        # would silently destroy dedup against the existing chunk store.
        import json

        from repro.cli import _catalog_chunking

        catalog = tmp_path / "cat.json"
        catalog.write_text(json.dumps({"snapshots": []}))
        assert _catalog_chunking(str(catalog)) == {"engine": "rabin"}

    def test_missing_catalog_resolves_to_empty(self, tmp_path):
        from repro.cli import _catalog_chunking

        assert _catalog_chunking(str(tmp_path / "absent.json")) == {}

    def test_backup_adopts_recorded_size_and_engine(self, tmp_path, capsys):
        import json

        from repro.cli import main as cli

        source = tmp_path / "data"
        source.mkdir()
        (source / "f.bin").write_bytes(os.urandom(40_000))
        catalog = str(tmp_path / "cat.json")
        store = str(tmp_path / "store")
        assert cli(["backup", "--root", str(source), "--catalog", catalog,
                    "--store", store, "--chunk-size", "1024",
                    "--chunk-engine", "rabin"]) == 0
        # Second backup with default flags must adopt 1024/rabin from the
        # catalog: the unchanged file must chunk to the exact same
        # fingerprints (cross-invocation index warm-up is a separate
        # ROADMAP item, so dedup stats are not asserted here).
        assert cli(["backup", "--root", str(source), "--catalog", catalog,
                    "--store", store, "--snapshot", "snap-2"]) == 0
        payload = json.load(open(catalog))
        recorded = payload["chunking"]
        assert recorded["engine"] == "rabin" and recorded["average_size"] == 1024
        chunks = {
            snap["snapshot_id"]: snap["files"][0]["chunks"]
            for snap in payload["snapshots"]
        }
        assert chunks["snap-1"] == chunks["snap-2"]
        assert len(chunks["snap-1"]) > 10  # really chunked at ~1 KB, not 8 KB


class TestCli:
    def test_experiment_table1(self, capsys):
        exit_code = cli_main(["experiment", "table1", "--scale", "0.002"])
        assert exit_code == 0
        output = capsys.readouterr().out
        assert "Table I" in output and "mail-server" in output

    def test_experiment_figure6(self, capsys):
        exit_code = cli_main(["experiment", "figure6", "--scale", "0.002", "--nodes", "4"])
        assert exit_code == 0
        assert "Figure 6" in capsys.readouterr().out

    def test_trace_generation_to_file(self, tmp_path, capsys):
        output_path = str(tmp_path / "trace.txt")
        exit_code = cli_main(
            ["trace", "--workload", "web-server", "--scale", "0.0002", "--output", output_path]
        )
        assert exit_code == 0
        lines = open(output_path, encoding="utf-8").read().splitlines()
        assert len(lines) > 100
        assert all(len(line) == 40 for line in lines[:10])  # hex SHA-1

    def test_backup_restore_cycle(self, tmp_path, capsys):
        source = tmp_path / "data"
        source.mkdir()
        payload = os.urandom(30_000)
        (source / "file.bin").write_bytes(payload)
        catalog = str(tmp_path / "catalog.json")
        store = str(tmp_path / "chunkstore")

        assert cli_main([
            "backup", "--root", str(source), "--catalog", catalog, "--store", store,
            "--snapshot", "snap-1",
        ]) == 0
        assert "snap-1" in capsys.readouterr().out

        assert cli_main(["snapshots", "--catalog", catalog, "--store", store]) == 0
        assert "snap-1" in capsys.readouterr().out

        target = tmp_path / "restored"
        assert cli_main([
            "restore", "--snapshot", "snap-1", "--target", str(target),
            "--catalog", catalog, "--store", store,
        ]) == 0
        assert (target / "file.bin").read_bytes() == payload

    def test_restore_unknown_snapshot_fails(self, tmp_path, capsys):
        catalog = str(tmp_path / "catalog.json")
        store = str(tmp_path / "chunkstore")
        exit_code = cli_main([
            "restore", "--snapshot", "ghost", "--target", str(tmp_path / "out"),
            "--catalog", catalog, "--store", store,
        ])
        assert exit_code == 1
