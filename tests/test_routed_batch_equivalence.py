"""Equivalence pins for the routed-batch fast path (PR 5).

The cluster's ``lookup_batch_replies`` was rebuilt around a
membership-epoch-keyed routing cache, one-pass bucket dispatch and batched
replica propagation.  The pre-change implementation is kept verbatim as
``lookup_batch_replies_reference``; these tests drive **twin clusters** --
identical config, identical workload, one through each path -- and require
identical verdicts, ``ServedFrom`` tiers, per-node counters and
replica-write counts, under clean runs, downed nodes, grey failures and
membership churn.
"""

from __future__ import annotations

import pytest

from repro.core.cluster import SHHCCluster
from repro.core.config import ClusterConfig, HashNodeConfig
from repro.core.fault_injection import make_flaky
from repro.core.membership import MembershipManager
from repro.core.protocol import LookupReply, ServedFrom, make_lookup_reply
from repro.dedup.fingerprint import synthetic_fingerprint


def make_cluster(num_nodes=4, replication=2, virtual_nodes=0):
    config = ClusterConfig(
        num_nodes=num_nodes,
        replication_factor=replication,
        virtual_nodes=virtual_nodes,
        node=HashNodeConfig(
            ram_cache_entries=256,
            bloom_expected_items=50_000,
            ssd_buckets=1 << 8,
        ),
    )
    return SHHCCluster(config)


def workload(count, distinct=None, salt=0):
    distinct = distinct if distinct is not None else max(1, count // 3)
    return [synthetic_fingerprint(salt + i % distinct) for i in range(count)]


def drive(cluster, fingerprints, path, batch_size=64):
    lookup = getattr(cluster, path)
    replies = []
    for start in range(0, len(fingerprints), batch_size):
        replies.extend(lookup(fingerprints[start:start + batch_size]))
    return replies


def assert_equivalent(fast_cluster, fast_replies, reference_cluster, reference_replies):
    assert [r.is_duplicate for r in fast_replies] == [
        r.is_duplicate for r in reference_replies
    ]
    assert [r.served_from for r in fast_replies] == [
        r.served_from for r in reference_replies
    ]
    assert [r.node_id for r in fast_replies] == [r.node_id for r in reference_replies]
    assert [r.service_time for r in fast_replies] == [
        r.service_time for r in reference_replies
    ]
    for name in fast_cluster.nodes:
        fast_node = fast_cluster.nodes[name]
        reference_node = reference_cluster.nodes[name]
        assert fast_node.counters.as_dict() == reference_node.counters.as_dict(), name
        assert len(fast_node.store) == len(reference_node.store), name
        assert set(fast_node.store.keys()) == set(reference_node.store.keys()), name
        assert fast_node.store.stats() == reference_node.store.stats(), name
        assert fast_node.cache.stats() == reference_node.cache.stats(), name
    assert fast_cluster.read_repairs == reference_cluster.read_repairs
    assert fast_cluster.failovers == reference_cluster.failovers
    assert fast_cluster.total_stored == reference_cluster.total_stored
    assert len(fast_cluster) == len(reference_cluster)


def replica_writes(cluster):
    return {
        name: node.counters.get("replica_inserts") for name, node in cluster.nodes.items()
    }


class TestRoutedBatchEquivalence:
    @pytest.mark.parametrize("replication", [1, 2, 3])
    @pytest.mark.parametrize("virtual_nodes", [0, 16])
    def test_clean_run_is_byte_identical(self, replication, virtual_nodes):
        fast = make_cluster(replication=replication, virtual_nodes=virtual_nodes)
        reference = make_cluster(replication=replication, virtual_nodes=virtual_nodes)
        fingerprints = workload(900)
        fast_replies = drive(fast, fingerprints, "lookup_batch_replies")
        reference_replies = drive(reference, fingerprints, "lookup_batch_replies_reference")
        assert_equivalent(fast, fast_replies, reference, reference_replies)
        assert replica_writes(fast) == replica_writes(reference)

    def test_equivalent_under_downed_nodes_and_recovery(self):
        fast = make_cluster()
        reference = make_cluster()
        warm = workload(200)
        # Distinct fingerprints first seen while a node is down: their
        # primaries may miss the write, setting up post-recovery repair.
        while_down = workload(200, distinct=200, salt=10_000)
        fast_replies = drive(fast, warm, "lookup_batch_replies")
        reference_replies = drive(reference, warm, "lookup_batch_replies_reference")
        victim = fast.node_names[1]
        fast.mark_down(victim)
        reference.mark_down(victim)
        fast_replies += drive(fast, while_down, "lookup_batch_replies")
        reference_replies += drive(reference, while_down, "lookup_batch_replies_reference")
        fast.mark_up(victim)
        reference.mark_up(victim)
        # Read repair: the recovered node missed writes and must be
        # backfilled identically on both paths.
        fast_replies += drive(fast, while_down, "lookup_batch_replies")
        reference_replies += drive(reference, while_down, "lookup_batch_replies_reference")
        assert any(r.served_from is ServedFrom.REPAIR for r in fast_replies)
        assert_equivalent(fast, fast_replies, reference, reference_replies)
        assert replica_writes(fast) == replica_writes(reference)

    def test_equivalent_under_grey_failure(self):
        fast = make_cluster(num_nodes=3, replication=2)
        reference = make_cluster(num_nodes=3, replication=2)
        fingerprints = workload(400)
        drive(fast, fingerprints, "lookup_batch_replies")
        drive(reference, fingerprints, "lookup_batch_replies_reference")
        victim = fast.node_names[0]
        make_flaky(fast, victim, failure_rate=0.4, seed=11)
        make_flaky(reference, victim, failure_rate=0.4, seed=11)
        fast_replies = drive(fast, fingerprints, "lookup_batch_replies")
        reference_replies = drive(reference, fingerprints, "lookup_batch_replies_reference")
        assert fast.failovers > 0
        assert_equivalent(fast, fast_replies, reference, reference_replies)

    def test_equivalent_under_membership_churn(self):
        fast = make_cluster(virtual_nodes=16)
        reference = make_cluster(virtual_nodes=16)
        fingerprints = workload(600, salt=50_000)
        fast_replies = drive(fast, fingerprints[:300], "lookup_batch_replies")
        reference_replies = drive(reference, fingerprints[:300], "lookup_batch_replies_reference")
        for cluster in (fast, reference):
            manager = MembershipManager(cluster)
            manager.add_node("hashnode-9")
            manager.remove_node(cluster.config.node_names[0])
        fast_replies += drive(fast, fingerprints[300:], "lookup_batch_replies")
        reference_replies += drive(
            reference, fingerprints[300:], "lookup_batch_replies_reference"
        )
        assert "hashnode-9" in {r.node_id for r in fast_replies[300:]}
        assert_equivalent(fast, fast_replies, reference, reference_replies)
        assert replica_writes(fast) == replica_writes(reference)

    def test_matches_per_fingerprint_sequential_verdicts(self):
        """Verdict/counter parity with the batch_size=1 sequential path."""
        batched = make_cluster()
        sequential = make_cluster()
        fingerprints = workload(500)
        batched_replies = drive(batched, fingerprints, "lookup_batch_replies")
        sequential_replies = [sequential.lookup_reply(fp) for fp in fingerprints]
        assert [r.is_duplicate for r in batched_replies] == [
            r.is_duplicate for r in sequential_replies
        ]
        assert replica_writes(batched) == replica_writes(sequential)
        assert len(batched) == len(sequential)


class TestRoutingCacheInvalidation:
    def test_membership_epoch_bumps_invalidate_routes(self):
        cluster = make_cluster(virtual_nodes=16)
        fingerprints = workload(200, salt=9_000)
        drive(cluster, fingerprints, "lookup_batch_replies")
        assert cluster._route_cache  # warmed
        cluster.partitioner.add_node("hashnode-7")
        cluster.nodes["hashnode-7"] = type(cluster.nodes["hashnode-0"])(
            "hashnode-7", cluster.config.node, None
        )
        # Next routed batch must re-resolve against the new membership.
        replies = drive(cluster, fingerprints, "lookup_batch_replies")
        for reply, fingerprint in zip(replies, fingerprints):
            assert reply.node_id in cluster.replica_set(fingerprint) or reply.is_duplicate
        for digest, replicas in cluster._route_cache.items():
            fp = next(f for f in fingerprints if f.digest == digest)
            assert list(replicas) == cluster.partitioner.owners(
                fp, cluster.config.replication_factor
            )

    def test_partitioner_swap_invalidates_routes(self):
        from repro.core.partition import RangePartitioner

        cluster = make_cluster()
        fingerprints = workload(64, salt=1_000)
        # The scalar path still warms the digest-route cache (the routed
        # batch path resolves through the partitioner's prefix table and
        # no longer populates it).
        for fingerprint in fingerprints:
            cluster.lookup(fingerprint)
        assert cluster._route_cache
        cluster.partitioner = RangePartitioner(cluster.node_names)
        cluster._routes()
        assert not cluster._route_cache

    def test_route_cache_is_bounded(self):
        import repro.core.cluster as cluster_mod

        cluster = make_cluster()
        original = cluster_mod.ROUTE_CACHE_MAX_ENTRIES
        cluster_mod.ROUTE_CACHE_MAX_ENTRIES = 32
        try:
            drive(cluster, workload(300, distinct=300, salt=77_000), "lookup_batch_replies")
            assert len(cluster._route_cache) <= 33
        finally:
            cluster_mod.ROUTE_CACHE_MAX_ENTRIES = original


class TestHotPathConstructors:
    def test_make_lookup_reply_matches_regular_constructor(self):
        fingerprint = synthetic_fingerprint(1)
        fast = make_lookup_reply(fingerprint, True, ServedFrom.RAM, "n0", 1.5e-6)
        regular = LookupReply(
            fingerprint=fingerprint,
            is_duplicate=True,
            served_from=ServedFrom.RAM,
            node_id="n0",
            service_time=1.5e-6,
        )
        assert fast == regular
        assert hash(fast) == hash(regular)
        assert fast.payload_bytes == regular.payload_bytes

    def test_lookup_batch_results_match_reply_fields(self):
        cluster = make_cluster()
        fingerprints = workload(120)
        twin = make_cluster()
        replies = drive(twin, fingerprints, "lookup_batch_replies")
        results = drive(cluster, fingerprints, "lookup_batch")
        for result, reply in zip(results, replies):
            assert result.fingerprint == reply.fingerprint
            assert result.is_duplicate == reply.is_duplicate
            assert result.latency == reply.service_time
            assert result.served_by == reply.node_id
        assert cluster.lookups == len(fingerprints)
        assert cluster.duplicates == sum(r.is_duplicate for r in replies)


class TestVerdictDirectScenarioEquivalence:
    """``lookup_batch`` (verdict-direct results) vs the reference reply path.

    The clean run is pinned by
    :meth:`TestHotPathConstructors.test_lookup_batch_results_match_reply_fields`;
    these cover the failure scenarios, where the verdict path's deferred
    replica propagation, bucket-uniform routing shortcut and in-place
    repair flips must still match the reference path byte for byte.
    """

    @staticmethod
    def assert_results_match(cluster, results, reference_cluster, reference_replies):
        assert [r.is_duplicate for r in results] == [
            r.is_duplicate for r in reference_replies
        ]
        assert [r.latency for r in results] == [
            r.service_time for r in reference_replies
        ]
        assert [r.served_by for r in results] == [r.node_id for r in reference_replies]
        for name in cluster.nodes:
            node = cluster.nodes[name]
            reference_node = reference_cluster.nodes[name]
            assert node.counters.as_dict() == reference_node.counters.as_dict(), name
            assert set(node.store.keys()) == set(reference_node.store.keys()), name
            assert node.cache.stats() == reference_node.cache.stats(), name
        assert cluster.read_repairs == reference_cluster.read_repairs
        assert cluster.failovers == reference_cluster.failovers
        assert cluster.duplicates == sum(r.is_duplicate for r in reference_replies)

    def test_matches_under_downed_nodes_and_recovery(self):
        fast = make_cluster()
        reference = make_cluster()
        warm = workload(200)
        while_down = workload(200, distinct=200, salt=10_000)
        results = drive(fast, warm, "lookup_batch")
        reference_replies = drive(reference, warm, "lookup_batch_replies_reference")
        victim = fast.node_names[1]
        fast.mark_down(victim)
        reference.mark_down(victim)
        results += drive(fast, while_down, "lookup_batch")
        reference_replies += drive(reference, while_down, "lookup_batch_replies_reference")
        fast.mark_up(victim)
        reference.mark_up(victim)
        results += drive(fast, while_down, "lookup_batch")
        reference_replies += drive(reference, while_down, "lookup_batch_replies_reference")
        assert fast.read_repairs > 0
        self.assert_results_match(fast, results, reference, reference_replies)

    def test_matches_under_grey_failure(self):
        fast = make_cluster(num_nodes=3, replication=2)
        reference = make_cluster(num_nodes=3, replication=2)
        fingerprints = workload(400)
        results = drive(fast, fingerprints, "lookup_batch")
        reference_replies = drive(reference, fingerprints, "lookup_batch_replies_reference")
        victim = fast.node_names[0]
        make_flaky(fast, victim, failure_rate=0.4, seed=11)
        make_flaky(reference, victim, failure_rate=0.4, seed=11)
        results += drive(fast, fingerprints, "lookup_batch")
        reference_replies += drive(reference, fingerprints, "lookup_batch_replies_reference")
        assert fast.failovers > 0
        self.assert_results_match(fast, results, reference, reference_replies)

    def test_matches_under_membership_churn(self):
        fast = make_cluster(virtual_nodes=16)
        reference = make_cluster(virtual_nodes=16)
        fingerprints = workload(600, salt=50_000)
        results = drive(fast, fingerprints[:300], "lookup_batch")
        reference_replies = drive(
            reference, fingerprints[:300], "lookup_batch_replies_reference"
        )
        for cluster in (fast, reference):
            manager = MembershipManager(cluster)
            manager.add_node("hashnode-9")
            manager.remove_node(cluster.config.node_names[0])
        results += drive(fast, fingerprints[300:], "lookup_batch")
        reference_replies += drive(
            reference, fingerprints[300:], "lookup_batch_replies_reference"
        )
        assert "hashnode-9" in {r.served_by for r in results[300:]}
        self.assert_results_match(fast, results, reference, reference_replies)
