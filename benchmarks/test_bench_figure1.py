"""Benchmark: paper Figure 1 -- lookup execution time vs offered rate and cluster size.

Regenerates the motivation experiment: open-loop fingerprint queries at
20k-100k requests/second against clusters of 1-16 hybrid hash nodes,
reporting the time to complete a fixed number of requests.  Expected shape
(checked by assertions): execution time decreases with cluster size, and a
single node saturates at the higher offered rates while large clusters stay
injection-limited.
"""

from __future__ import annotations

from conftest import record_result

from repro.analysis.experiments import run_figure1


def test_bench_figure1(benchmark, results_dir, scale):
    requests = max(1_000, int(6_000 * scale))
    node_counts = (1, 2, 4, 8, 16)
    rates = (20_000, 40_000, 60_000, 80_000, 100_000)

    result = benchmark.pedantic(
        run_figure1,
        kwargs=dict(node_counts=node_counts, rates=rates, requests=requests),
        rounds=1,
        iterations=1,
    )
    record_result(results_dir, "figure1", result.render())

    # Shape 1: at every offered rate, more nodes never means more time.
    grouped = result.series()
    for rate_index in range(len(rates)):
        times = [grouped[nodes][rate_index].execution_time for nodes in node_counts]
        assert all(earlier >= later * 0.95 for earlier, later in zip(times, times[1:]))

    # Shape 2: a single node saturates at 100k req/s ...
    single_saturated = grouped[1][-1]
    assert single_saturated.achieved_rate < 100_000 * 0.7
    # ... while 16 nodes remain injection-limited (finish near requests/rate).
    big_cluster = grouped[16][-1]
    assert big_cluster.execution_time <= (requests / 100_000) * 1.5
