"""Benchmark: paper Figure 6 -- hash value storage distribution (load balance).

Stores the mixed Table-I workloads on a 4-node cluster and reports the share
of hash entries held by each node.  Expected shape: each node holds ~25 % of
the entries (the paper reports "roughly 25 %").
"""

from __future__ import annotations

from conftest import record_result

from repro.analysis.experiments import run_figure6


def test_bench_figure6(benchmark, results_dir, scale):
    workload_scale = 0.01 * scale

    result = benchmark.pedantic(
        run_figure6,
        kwargs=dict(num_nodes=4, scale=workload_scale),
        rounds=1,
        iterations=1,
    )
    record_result(results_dir, "figure6", result.render())

    fractions = result.fractions()
    assert len(fractions) == 4
    for share in fractions.values():
        assert abs(share - 0.25) < 0.03
    assert result.storage_report.coefficient_of_variation < 0.05
    # Access load (lookups served) is balanced as well (paper §IV.C).
    assert result.lookup_report.max_over_mean < 1.15


def test_bench_figure6_scales_to_more_nodes(benchmark, results_dir, scale):
    """Extension: the same balance holds for an 8-node cluster."""
    workload_scale = 0.005 * scale
    result = benchmark.pedantic(
        run_figure6,
        kwargs=dict(num_nodes=8, scale=workload_scale),
        rounds=1,
        iterations=1,
    )
    record_result(results_dir, "figure6_8nodes", result.render())
    for share in result.fractions().values():
        assert abs(share - 0.125) < 0.03
