"""Benchmark: paper Table I -- workload characteristics of the four traces.

Generates each synthetic trace (scaled) and verifies that the measured
fingerprint count, redundancy percentage, and mean duplicate distance match
the published statistics the generator was parameterised with.
"""

from __future__ import annotations

from conftest import record_result

from repro.analysis.experiments import run_table1


def test_bench_table1(benchmark, results_dir, scale):
    trace_scale = 0.01 * scale

    result = benchmark.pedantic(
        run_table1,
        kwargs=dict(scale=trace_scale),
        rounds=1,
        iterations=1,
    )
    record_result(results_dir, "table1", result.render())

    assert {row.workload for row in result.rows} == {
        "web-server",
        "home-dir",
        "mail-server",
        "time-machine",
    }
    for row in result.rows:
        # Fingerprint count is exact by construction.
        assert row.measured.fingerprints == row.target_fingerprints
        # Redundancy within two percentage points of the published value.
        assert row.redundancy_error < 0.02
        # Mean duplicate distance within 30 % (the truncation at the start of
        # a trace biases it slightly low, exactly as in the real traces).
        assert row.distance_relative_error < 0.30
