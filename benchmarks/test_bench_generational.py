"""Benchmark: Ablation D -- repeated full backups (cross-generation dedup).

Drives a 7-generation full-backup cycle (3% modified + 1% new data per
generation) through a 4-node cluster.  Expected shape: after the first
(cold) generation every generation is ~95% redundant, most duplicate lookups
are absorbed by the RAM tier, and the cumulative dedup ratio approaches the
number of generations.
"""

from __future__ import annotations

from conftest import record_result

from repro.analysis.experiments import run_generational_backup
from repro.workloads.generations import GenerationConfig


def test_bench_generational_backup(benchmark, results_dir, scale):
    config = GenerationConfig(
        initial_chunks=max(2_000, int(20_000 * scale)),
        generations=7,
        modify_fraction=0.03,
        growth_fraction=0.01,
    )
    result = benchmark.pedantic(
        run_generational_backup,
        kwargs=dict(config=config, num_nodes=4),
        rounds=1,
        iterations=1,
    )
    record_result(results_dir, "ablation_generational", result.render())

    first, later = result.rows[0], result.rows[1:]
    # The first full backup is cold: nothing is redundant.
    assert first.redundancy == 0.0
    # Every later generation is dominated by already-stored chunks.
    assert all(row.redundancy > 0.9 for row in later)
    # The RAM tier absorbs the bulk of those duplicate lookups.
    assert all(row.ram_hit_ratio > 0.5 for row in later)
    # Seven nearly identical full backups approach a 7x logical/physical ratio.
    assert result.final_dedup_ratio() > 4.5
