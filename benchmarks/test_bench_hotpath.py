"""Benchmark: data-plane hot paths, with a machine-readable perf trajectory.

Unlike the figure/table benchmarks (which reproduce the paper's *simulated*
results), this suite measures the real wall-clock throughput of the code
paths every byte of backup data funnels through:

* content-defined chunking MB/s -- the Rabin reference oracle vs. the
  table-driven gear engine (``baseline`` vs. ``fast`` series);
* bloom filter probes/s -- re-hash-per-probe (SHA-256) vs. the digest-key
  fast path with batched probes;
* cuckoo hash ops/s -- BLAKE2b-per-op vs. the digest-key fast path;
* simulation kernel events/s (schedule + dispatch, plus a cancel-heavy
  round exercising calendar compaction) -- vs. a pinned heapq/tombstone
  baseline loop;
* end-to-end immediate-mode cluster lookups (figure-1 style chunk/s) --
  the routed-batch fast path vs. the per-fingerprint ``batch_size=1``
  baseline -- recording replica-write counts so the replication tax can
  be quantified;
* packed whole-batch bloom/cuckoo kernels vs. their per-key scalar
  reference oracles (the vectorized data plane's isolated win);
* columnar numpy kernels vs. the packed-Python data plane (bloom
  add/probe, cuckoo gets, and a duplicate-heavy end-to-end node serve) --
  recorded only where numpy imports, and marked ``requires: numpy`` so
  tools/check_bench_floors.py skips rather than fails it on runners
  without the optional ``perf`` extra;
* one scenario-sweep wall clock, sequential vs. ``run_sweep(workers=N)``
  on a process pool (the speedup column needs real cores; the JSON
  records ``cpu_count``).

Besides the usual rendered table under ``benchmarks/results/``, the run
writes ``BENCH_hotpath.json`` at the repository root.  The JSON carries both
the ``baseline`` and ``fast`` series from the same process on the same data,
so every future PR can be compared against the recorded trajectory (CI
uploads the file as an artifact).  ``REPRO_BENCH_SCALE`` scales every
workload size.
"""

from __future__ import annotations

import json
import os
import platform
import random
import time
from pathlib import Path

from conftest import record_result

from repro.analysis.reporting import format_table
from repro.core.cluster import SHHCCluster
from repro.core.config import ClusterConfig, HashNodeConfig
from repro.dedup.chunking import ContentDefinedChunker
from repro.dedup.fingerprint import synthetic_fingerprint
from repro.simulation.engine import Simulator
from repro.storage.bloom import BloomFilter
from repro.storage.cuckoo import CuckooHashTable
from repro.storage.npy import HAVE_NUMPY, backend_name

REPO_ROOT = Path(__file__).resolve().parents[1]
BENCH_JSON = REPO_ROOT / "BENCH_hotpath.json"


class _SeedBloomFilter:
    """The seed repository's bloom-filter data path, pinned verbatim.

    This is the pre-fast-path implementation (SHA-256 per operation, the
    ``_indexes`` generator, one ``_set_bit``/``_get_bit`` method call per
    index) kept here as the benchmark's *baseline* so the before/after
    comparison stays honest as the library version evolves.
    """

    def __init__(self, num_bits: int, num_hashes: int) -> None:
        import hashlib

        self._sha256 = hashlib.sha256
        self.num_bits = num_bits
        self.num_hashes = num_hashes
        self._bits = bytearray((num_bits + 7) // 8)

    def _indexes(self, key: bytes):
        digest = self._sha256(key).digest()
        h1 = int.from_bytes(digest[:8], "big")
        h2 = int.from_bytes(digest[8:16], "big") | 1
        for i in range(self.num_hashes):
            yield (h1 + i * h2) % self.num_bits

    def _set_bit(self, index: int) -> None:
        self._bits[index >> 3] |= 1 << (index & 7)

    def _get_bit(self, index: int) -> bool:
        return bool(self._bits[index >> 3] & (1 << (index & 7)))

    def add(self, key: bytes) -> None:
        for index in self._indexes(key):
            self._set_bit(index)

    def __contains__(self, key: bytes) -> bool:
        return all(self._get_bit(index) for index in self._indexes(key))


def _timed(fn):
    start = time.perf_counter()
    result = fn()
    return time.perf_counter() - start, result


def _timed_best(fn, repeats: int = 3):
    """Best-of-N timing for *read-only* phases (standard microbenchmark
    noise reduction; both sides of every speedup ratio get it equally)."""
    best = None
    result = None
    for _ in range(repeats):
        elapsed, result = _timed(fn)
        best = elapsed if best is None else min(best, elapsed)
    return best, result


def _bench_chunking(scale: float) -> dict:
    size = max(262_144, int(1_200_000 * scale))
    data = random.Random(1234).randbytes(size)
    gear = ContentDefinedChunker(average_size=8192, engine="gear")
    rabin = ContentDefinedChunker(average_size=8192, engine="rabin")
    # Warm-up (table construction, allocator) outside the timed region.
    sum(chunk.size for chunk in gear.chunk(data[:65_536]))
    gear_time, gear_chunks = _timed_best(lambda: sum(1 for _ in gear.chunk(data)))
    rabin_time, rabin_chunks = _timed_best(lambda: sum(1 for _ in rabin.chunk(data)))
    return {
        "unit": "MB/s",
        "baseline": {
            "engine": "rabin",
            "mb_per_s": size / 1e6 / rabin_time,
            "chunks": rabin_chunks,
            "input_bytes": size,
        },
        "fast": {
            "engine": "gear",
            "mb_per_s": size / 1e6 / gear_time,
            "chunks": gear_chunks,
            "input_bytes": size,
        },
        "speedup": rabin_time / gear_time,
    }


def _bench_bloom(scale: float) -> dict:
    count = max(5_000, int(50_000 * scale))
    present = [synthetic_fingerprint(i).digest for i in range(count)]
    absent = [synthetic_fingerprint(10_000_000 + i).digest for i in range(count)]
    probes = present + absent

    fast = BloomFilter(expected_items=count, digest_keys=True)
    baseline = _SeedBloomFilter(num_bits=fast.num_bits, num_hashes=fast.num_hashes)

    def _baseline_add():
        add = baseline.add
        for key in present:
            add(key)

    def _baseline_probe():
        return sum(1 for key in probes if key in baseline)

    baseline_add_time, _ = _timed(_baseline_add)
    baseline_time, baseline_hits = _timed_best(_baseline_probe)
    fast_add_time, _ = _timed(lambda: fast.add_many(present))
    fast_time, fast_hits = _timed_best(lambda: sum(fast.contains_many(probes)))
    assert baseline_hits >= count and fast_hits >= count  # no false negatives
    return {
        "unit": "probes/s",
        "baseline": {
            "hashing": "sha256-per-probe",
            "ops_per_s": len(probes) / baseline_time,
            "add_ops_per_s": len(present) / baseline_add_time,
            "probes": len(probes),
        },
        "fast": {
            "hashing": "digest-key+batched",
            "ops_per_s": len(probes) / fast_time,
            "add_ops_per_s": len(present) / fast_add_time,
            "probes": len(probes),
        },
        "speedup": baseline_time / fast_time,
        "add_speedup": baseline_add_time / fast_add_time,
    }


def _bench_cuckoo(scale: float) -> dict:
    count = max(5_000, int(30_000 * scale))
    keys = [synthetic_fingerprint(i).digest for i in range(count)]
    probes = keys + [synthetic_fingerprint(20_000_000 + i).digest for i in range(count)]

    baseline = CuckooHashTable(initial_buckets=1024, digest_keys=False)
    fast = CuckooHashTable(initial_buckets=1024, digest_keys=True)

    for index, key in enumerate(keys):  # build outside the timed probe phase
        baseline.put(key, index)
    fast.put_many((key, index) for index, key in enumerate(keys))
    baseline_time, baseline_hits = _timed_best(
        lambda: sum(1 for key in probes if baseline.get(key) is not None)
    )
    fast_time, fast_hits = _timed_best(
        lambda: sum(1 for value in fast.get_many(probes) if value is not None)
    )
    assert baseline_hits == fast_hits == count
    ops = len(probes)
    return {
        "unit": "gets/s",
        "baseline": {"hashing": "blake2b-per-op", "ops_per_s": ops / baseline_time, "ops": ops},
        "fast": {"hashing": "digest-key", "ops_per_s": ops / fast_time, "ops": ops},
        "speedup": baseline_time / fast_time,
    }


class _SeedEventLoop:
    """The pre-optimisation event-loop shape, pinned as the bench baseline.

    A plain heapq calendar where ``cancel`` leaves a tombstone that is only
    discarded when popped, ``pending_events`` is a linear scan, and the run
    loop re-resolves every attribute per event -- the shape the library's
    :class:`~repro.simulation.engine.Simulator` hot loop (bound locals,
    O(1) pending counter, calendar compaction) was built against.  Kept
    here so the ``engine_events`` speedup stays comparable PR-over-PR.
    """

    class _Entry:
        __slots__ = ("time", "sequence", "callback", "cancelled")

        def __init__(self, time: float, sequence: int, callback) -> None:
            self.time = time
            self.sequence = sequence
            self.callback = callback
            self.cancelled = False

        def __lt__(self, other: "_SeedEventLoop._Entry") -> bool:
            return (self.time, self.sequence) < (other.time, other.sequence)

        def cancel(self) -> None:
            self.cancelled = True

    def __init__(self) -> None:
        import heapq

        self._heapq = heapq
        self._calendar: list = []
        self._sequence = 0
        self.now = 0.0
        self.events_processed = 0

    def schedule(self, delay: float, callback) -> "_SeedEventLoop._Entry":
        entry = self._Entry(self.now + delay, self._sequence, callback)
        self._sequence += 1
        self._heapq.heappush(self._calendar, entry)
        return entry

    def pending_events(self) -> int:
        return sum(1 for entry in self._calendar if not entry.cancelled)

    def run(self) -> None:
        while self._calendar:
            entry = self._heapq.heappop(self._calendar)
            if entry.cancelled:
                continue
            self.now = entry.time
            entry.callback()
            self.events_processed += 1


def _bench_engine(scale: float) -> dict:
    events = max(5_000, int(60_000 * scale))

    def _drive(sim_factory) -> tuple:
        rng = random.Random(99)
        sim = sim_factory()
        elapsed, processed = _timed(lambda: _schedule_and_run(sim, rng, events))
        assert processed == events
        sim2 = sim_factory()
        cancel_elapsed, cancel_processed = _timed(lambda: _cancel_heavy(sim2, rng, events))
        assert cancel_processed == events - (events + 1) // 2
        return elapsed, cancel_elapsed

    def _schedule_and_run(sim, rng, count):
        for _ in range(count):
            sim.schedule(rng.random() * 100.0, _noop)
        sim.run()
        return sim.events_processed

    def _cancel_heavy(sim, rng, count):
        # Cancels half the calendar before running, exercising the O(1)
        # cancel accounting and compaction on the fast side and tombstone
        # skipping on the baseline.
        entries = [sim.schedule(rng.random() * 100.0, _noop) for _ in range(count)]
        for entry in entries[::2]:
            entry.cancel()
        sim.run()
        return sim.events_processed

    baseline_elapsed, baseline_cancel = _drive(_SeedEventLoop)
    fast_elapsed, fast_cancel = _drive(Simulator)
    return {
        "unit": "events/s",
        "baseline": {
            "engine": "heapq+tombstones (pinned pre-fast-path shape)",
            "events_per_s": events / baseline_elapsed,
            "events": events,
            "cancel_heavy_events_per_s": events / baseline_cancel,
        },
        "fast": {
            "engine": "bound-locals hot loop + compaction",
            "events_per_s": events / fast_elapsed,
            "events": events,
            "cancel_heavy_events_per_s": events / fast_cancel,
        },
        "speedup": baseline_elapsed / fast_elapsed,
        "cancel_heavy_speedup": baseline_cancel / fast_cancel,
    }


def _noop() -> None:
    return None


def _bench_cluster(scale: float) -> dict:
    requests = max(2_000, int(16_000 * scale))
    batch_size = 128
    replication_factor = 2
    config = ClusterConfig(
        num_nodes=4,
        replication_factor=replication_factor,
        node=HashNodeConfig(
            ram_cache_entries=4_096,
            bloom_expected_items=max(20_000, requests),
            ssd_buckets=1 << 12,
        ),
    )
    rng = random.Random(7)
    fingerprints = [
        synthetic_fingerprint(rng.randrange(max(1, requests // 2))) for _ in range(requests)
    ]

    def _run_batched(cluster):
        duplicates = 0
        for start in range(0, len(fingerprints), batch_size):
            for result in cluster.lookup_batch(fingerprints[start:start + batch_size]):
                duplicates += result.is_duplicate
        return duplicates

    def _run_sequential(cluster):
        # The paper's batch_size=1 leg: every fingerprint resolved and
        # served individually -- the routing-layer work the routed-batch
        # fast path collapses into per-bucket work.
        duplicates = 0
        lookup = cluster.lookup
        for fingerprint in fingerprints:
            duplicates += lookup(fingerprint).is_duplicate
        return duplicates

    def _measure(run, repeats: int = 3):
        # Lookups mutate the cluster, so each repeat gets a fresh one;
        # best-of-N tames scheduler noise like the read-only phases.
        best = None
        duplicates = writes = 0
        for _ in range(repeats):
            cluster = SHHCCluster(config)
            elapsed, duplicates = _timed(lambda: run(cluster))
            writes = sum(
                node.counters.get("replica_inserts") for node in cluster.nodes.values()
            )
            best = elapsed if best is None else min(best, elapsed)
        return best, duplicates, writes

    baseline_elapsed, baseline_duplicates, baseline_writes = _measure(_run_sequential)
    fast_elapsed, duplicates, replica_writes = _measure(_run_batched)
    # The two legs must agree on every verdict and every replica write --
    # the routed-batch fast path is only a fast path.
    assert duplicates == baseline_duplicates
    assert replica_writes == baseline_writes
    return {
        "unit": "fingerprints/s",
        "baseline": {
            "path": "per-fingerprint lookup() (batch_size=1)",
            "fingerprints_per_s": requests / baseline_elapsed,
            "requests": requests,
            "batch_size": 1,
            "duplicates": baseline_duplicates,
            "nodes": config.num_nodes,
            "replication_factor": replication_factor,
            "replica_writes": baseline_writes,
        },
        "fast": {
            "path": "routed-batch lookup_batch()",
            "fingerprints_per_s": requests / fast_elapsed,
            "requests": requests,
            "batch_size": batch_size,
            "duplicates": duplicates,
            "nodes": config.num_nodes,
            # Replication-tax accounting: replica copies written per client
            # lookup, the input for the ROADMAP "simulated-mode replication
            # cost" item.
            "replication_factor": replication_factor,
            "replica_writes": replica_writes,
            "replica_writes_per_lookup": replica_writes / requests,
        },
        "speedup": baseline_elapsed / fast_elapsed,
    }


def _bench_vectorized(scale: float) -> dict:
    """Whole-bucket packed kernels vs their scalar reference oracles.

    Both legs run the *library's own* code: the ``*_scalar`` methods are
    the per-key reference kernels the packed paths are differentially
    tested against (tests/test_vectorized_kernels.py), so this ratio
    isolates the win of the contiguous-digest-buffer data plane --
    one ``struct`` unpack per batch plus exec-generated whole-batch
    loops -- over per-key dispatch on identical structures.  Outputs and
    final filter/table state must match bit for bit; ``cpu_count`` rides
    along because CI floor checks treat small runners differently.
    """
    count = max(5_000, int(40_000 * scale))
    keys = [synthetic_fingerprint(i).digest for i in range(count)]
    probes = keys + [synthetic_fingerprint(30_000_000 + i).digest for i in range(count)]

    scalar_bloom = BloomFilter(expected_items=count, digest_keys=True)
    packed_bloom = BloomFilter(expected_items=count, digest_keys=True)
    scalar_add_time, _ = _timed(lambda: scalar_bloom.add_many_scalar(keys))
    packed_add_time, _ = _timed(lambda: packed_bloom.add_many(keys))
    assert scalar_bloom.raw_bits() == packed_bloom.raw_bits()
    scalar_probe_time, scalar_verdicts = _timed_best(
        lambda: scalar_bloom.contains_many_scalar(probes)
    )
    packed_probe_time, packed_verdicts = _timed_best(
        lambda: packed_bloom.contains_many(probes)
    )
    assert scalar_verdicts == packed_verdicts

    scalar_table = CuckooHashTable(initial_buckets=1024, digest_keys=True)
    packed_table = CuckooHashTable(initial_buckets=1024, digest_keys=True)
    items = [(key, index) for index, key in enumerate(keys)]
    scalar_put_time, _ = _timed(lambda: scalar_table.put_many_scalar(items))
    packed_put_time, _ = _timed(lambda: packed_table.put_many(items))
    scalar_get_time, scalar_values = _timed_best(
        lambda: scalar_table.get_many_scalar(probes)
    )
    packed_get_time, packed_values = _timed_best(lambda: packed_table.get_many(probes))
    assert scalar_values == packed_values
    assert sum(1 for value in packed_values if value is not None) == count

    # Headline = the lookup kernel (cuckoo whole-bucket gets), where the
    # packed buffer pays off most; the bloom ratios are smaller because the
    # scalar oracle is itself an unrolled early-exit kernel -- the packed
    # leg's bloom win is hashing amortization, and it rides along below.
    return {
        "unit": "gets/s (packed kernels vs scalar oracles)",
        "cpu_count": os.cpu_count() or 1,
        "baseline": {
            "path": "per-key scalar reference kernels",
            "ops_per_s": len(probes) / scalar_get_time,
            "bloom_add_ops_per_s": count / scalar_add_time,
            "bloom_probe_ops_per_s": len(probes) / scalar_probe_time,
            "cuckoo_put_ops_per_s": count / scalar_put_time,
            "probes": len(probes),
        },
        "fast": {
            "path": "packed digest buffers + whole-batch kernels",
            "ops_per_s": len(probes) / packed_get_time,
            "bloom_add_ops_per_s": count / packed_add_time,
            "bloom_probe_ops_per_s": len(probes) / packed_probe_time,
            "cuckoo_put_ops_per_s": count / packed_put_time,
            "probes": len(probes),
        },
        "speedup": scalar_get_time / packed_get_time,
        "bloom_add_speedup": scalar_add_time / packed_add_time,
        "bloom_probe_speedup": scalar_probe_time / packed_probe_time,
        "cuckoo_put_speedup": scalar_put_time / packed_put_time,
    }


def _bench_numpy(scale: float) -> dict:
    """Columnar numpy kernels vs the packed-Python data plane.

    Both legs run the library's own routed code paths: the packed leg pins
    each module's ``NUMPY_MIN_BATCH`` crossover above any batch size so the
    routing falls back to the exec-generated packed kernels; the numpy leg
    leaves the default crossover in place.  Final filter/table state and
    every verdict must agree bit for bit -- the columnar backend is only a
    backend.  The headline ``speedup`` is the end-to-end duplicate-heavy
    node serve (the paper's steady-state case: a warmed node re-answering
    known fingerprints, RAM cache far smaller than the working set, so
    nearly every verdict runs the bloom-positive/store-hit path); the
    bloom/cuckoo kernel ratios ride along.  The JSON entry carries
    ``requires: numpy`` so tools/check_bench_floors.py skips (rather than
    fails) the series on runners without the optional ``perf`` extra, and
    ``cpu_count`` so committed-value comparisons stay machine-local.
    """
    import repro.core.hash_node as hash_node_module
    import repro.storage.bloom as bloom_module
    import repro.storage.cuckoo as cuckoo_module
    from repro.core.digest_batch import DigestBatch
    from repro.core.hash_node import HybridHashNode

    def _forced_packed(module, fn):
        crossover = module.NUMPY_MIN_BATCH
        module.NUMPY_MIN_BATCH = 1 << 62
        try:
            return fn()
        finally:
            module.NUMPY_MIN_BATCH = crossover

    # --- bloom add / probe kernels ------------------------------------
    count = max(8_000, int(60_000 * scale))
    keys = [synthetic_fingerprint(i).digest for i in range(count)]
    probes = keys + [synthetic_fingerprint(50_000_000 + i).digest for i in range(count)]
    packed_bloom = BloomFilter(expected_items=count, digest_keys=True)
    numpy_bloom = BloomFilter(expected_items=count, digest_keys=True)
    packed_add_time, _ = _forced_packed(
        bloom_module, lambda: _timed(lambda: packed_bloom.add_many(keys))
    )
    numpy_add_time, _ = _timed(lambda: numpy_bloom.add_many(keys))
    assert packed_bloom.raw_bits() == numpy_bloom.raw_bits()
    packed_probe_time, packed_verdicts = _forced_packed(
        bloom_module, lambda: _timed_best(lambda: packed_bloom.contains_many(probes))
    )
    numpy_probe_time, numpy_verdicts = _timed_best(lambda: numpy_bloom.contains_many(probes))
    assert packed_verdicts == numpy_verdicts

    # --- cuckoo get kernel --------------------------------------------
    table = CuckooHashTable(initial_buckets=1024, digest_keys=True)
    table.put_many((key, index) for index, key in enumerate(keys))
    packed_get_time, packed_values = _forced_packed(
        cuckoo_module, lambda: _timed_best(lambda: table.get_many(probes))
    )
    numpy_get_time, numpy_values = _timed_best(lambda: table.get_many(probes))
    assert packed_values == numpy_values
    assert sum(1 for value in numpy_values if value is not None) == count

    # --- end-to-end duplicate-heavy node serve ------------------------
    batch_size = 1024
    batches = max(12, int(100 * scale))
    total = batch_size * batches

    def _digest(i: int) -> bytes:
        return synthetic_fingerprint(i).digest

    warm_blobs = [
        b"".join(_digest(b * batch_size + i) for i in range(batch_size))
        for b in range(batches)
    ]
    rng = random.Random(11)
    timed_blobs = [
        b"".join(_digest(rng.randrange(total)) for _ in range(batch_size))
        for _ in range(batches)
    ]
    node_config = HashNodeConfig(
        ram_cache_entries=8_192,
        bloom_expected_items=max(50_000, total),
        ssd_buckets=1 << 14,
    )

    def _serve_leg():
        # Fresh node, identical warm + timed streams per leg: counters and
        # verdicts must come out identical, only the kernel family differs.
        node = HybridHashNode("bench", node_config)
        for blob in warm_blobs:
            node.serve_digest_batch(DigestBatch.from_blob(blob, 4096))
        best = None
        verdicts: list = []
        for _ in range(3):
            verdicts = []
            start = time.perf_counter()
            for blob in timed_blobs:
                batch_verdicts, _new = node.serve_digest_batch(
                    DigestBatch.from_blob(blob, 4096)
                )
                verdicts.extend(batch_verdicts)
            elapsed = time.perf_counter() - start
            best = elapsed if best is None else min(best, elapsed)
        return best, verdicts, node

    packed_elapsed, packed_node_verdicts, packed_node = _forced_packed(
        hash_node_module, _serve_leg
    )
    numpy_elapsed, numpy_node_verdicts, numpy_node = _serve_leg()
    assert numpy_node.kernel_backend == "numpy"
    assert packed_node_verdicts == numpy_node_verdicts
    assert packed_node.counters.as_dict() == numpy_node.counters.as_dict()
    assert packed_node.bloom.raw_bits() == numpy_node.bloom.raw_bits()

    return {
        "unit": "fingerprints/s (duplicate-heavy node serve)",
        "requires": "numpy",
        "cpu_count": os.cpu_count() or 1,
        "backend": backend_name(),
        "baseline": {
            "path": "packed-Python kernels (NUMPY_MIN_BATCH pinned high)",
            "fingerprints_per_s": total / packed_elapsed,
            "fingerprints": total,
            "batch_size": batch_size,
            "bloom_add_ops_per_s": count / packed_add_time,
            "bloom_probe_ops_per_s": len(probes) / packed_probe_time,
            "cuckoo_get_ops_per_s": len(probes) / packed_get_time,
        },
        "fast": {
            "path": "columnar numpy kernels (default crossover)",
            "fingerprints_per_s": total / numpy_elapsed,
            "fingerprints": total,
            "batch_size": batch_size,
            "bloom_add_ops_per_s": count / numpy_add_time,
            "bloom_probe_ops_per_s": len(probes) / numpy_probe_time,
            "cuckoo_get_ops_per_s": len(probes) / numpy_get_time,
        },
        "speedup": packed_elapsed / numpy_elapsed,
        "bloom_add_speedup": packed_add_time / numpy_add_time,
        "bloom_probe_speedup": packed_probe_time / numpy_probe_time,
        "cuckoo_get_speedup": packed_get_time / numpy_get_time,
    }


def _bench_sweep(scale: float) -> dict:
    """Wall-clock of one scenario sweep, sequential vs process pool.

    The grid is fixed (scenario scale 0.0005, four failover points) rather
    than scaled by ``REPRO_BENCH_SCALE``: pool startup is a constant cost,
    so shrinking the per-point work would benchmark the pool, not the
    sweep.  ``workers`` is capped by the visible CPUs; on a single-core
    box the recorded speedup is honestly ~1x (the determinism guarantee,
    not the speedup, is the portable property -- see docs/scenarios.md).
    """
    del scale
    from repro.scenarios import SweepGrid, run_sweep, spec_for

    spec = spec_for("failover", scale=0.0005)
    grid = SweepGrid(axes={"replication_factor": [1, 2], "outage_density": [0.2, 0.4]})
    workers = min(4, os.cpu_count() or 1)
    sequential_elapsed, sequential = _timed(lambda: run_sweep(spec, grid))
    parallel_elapsed, parallel = _timed(lambda: run_sweep(spec, grid, workers=workers))
    assert sequential.to_json() == parallel.to_json()  # determinism guarantee
    return {
        "unit": "speedup (sequential wall-clock / parallel)",
        "points": len(grid),
        "cpu_count": os.cpu_count() or 1,
        "baseline": {"wall_clock_s": sequential_elapsed, "workers": 1},
        "fast": {"wall_clock_s": parallel_elapsed, "workers": workers},
        "speedup": sequential_elapsed / parallel_elapsed,
    }


def _bench_control_plane(scale: float) -> dict:
    """The control-plane tax, measured in deterministic virtual time.

    Runs ``run_failover_timed`` (cost model on, rolling outage) and records
    the degraded/steady p99 lookup-latency ratio as the series' ``speedup``
    field: the replication-tax figure the cost model exists to surface.
    Unlike the wall-clock series, both sides live on the ledger's virtual
    clock, so the ratio is exactly reproducible on any machine -- but only
    for a fixed workload, hence ``REPRO_BENCH_SCALE`` is ignored (CI
    regenerates at a smaller scale and compares against the committed
    value via tools/check_bench_floors.py).  A change that silently makes
    the control plane free again collapses the ratio to ~1.0 and trips
    the floor guard.
    """
    del scale
    from repro.analysis.experiments.control_plane import run_failover_timed

    result = run_failover_timed(scale=0.001, seed=0)
    steady, degraded = result.steady, result.taxed
    assert steady is not None and degraded is not None
    return {
        "unit": "p99 tax (degraded p99 / steady p99, virtual time)",
        "baseline": {
            "phase": "steady",
            "lookups": steady.count,
            "p50_latency_us": steady.p50 * 1e6,
            "p99_latency_us": steady.p99 * 1e6,
        },
        "fast": {
            "phase": "degraded",
            "lookups": degraded.count,
            "p50_latency_us": degraded.p50 * 1e6,
            "p99_latency_us": degraded.p99 * 1e6,
        },
        "offered_load": result.offered_load,
        "replica_writes": result.counters.get("replica_writes", 0),
        "control_plane_cpu_seconds": result.control_plane_cpu_seconds,
        "speedup": result.p99_tax,
    }


def _bench_recovery(scale: float) -> dict:
    """Node restart: cold full-log replay vs snapshot warm restart.

    Populates one node's on-disk persistence (container log of ``entries``
    fingerprints) three times -- once bare, once with a bloom snapshot
    covering the whole log, once with bloom **and** store snapshots (the
    full warm path the serving workers restart through) -- then times
    :meth:`NodePersistence.recover_into` on a fresh node for each.  The
    timed region includes opening the container (the CRC scan) and
    rebuilding the store, so the ratio is end-to-end restart time, not
    just the bloom delta.  All paths must recover the exact same entry
    count; the warm paths must load their snapshots and replay zero tail
    records; the ``fast`` (store snapshot) leg must additionally skip the
    per-record store rebuild entirely.
    """
    import tempfile

    from repro.core.persistence import NodePersistence
    from repro.storage.hashstore import SSDHashStore

    entries = max(10_000, int(60_000 * scale))
    digests = [synthetic_fingerprint(i).digest for i in range(entries)]
    expected_items = max(entries, 10_000)
    num_buckets = 1 << 14

    class _Node:
        def __init__(self) -> None:
            self.node_id = "bench"
            self.store = SSDHashStore(num_buckets=num_buckets)
            self.bloom = BloomFilter(expected_items=expected_items, digest_keys=True)

    def _populate(directory: str, snapshot: bool, with_store: bool = False) -> None:
        persistence = NodePersistence(directory)
        persistence.log_insert_many((digest, 4096) for digest in digests)
        if snapshot:
            bloom = BloomFilter(expected_items=expected_items, digest_keys=True)
            bloom.add_many(digests)
            store = None
            if with_store:
                store = SSDHashStore(num_buckets=num_buckets)
                for digest in digests:
                    store.put(digest, 4096)
            persistence.take_snapshot(bloom, entries=entries, store=store)
        persistence.close()

    def _recover(directory: str):
        node = _Node()
        with NodePersistence(directory) as persistence:
            return persistence.recover_into(node)

    with tempfile.TemporaryDirectory(prefix="repro-bench-recovery-") as root:
        cold_dir = os.path.join(root, "cold")
        warm_dir = os.path.join(root, "warm")
        store_dir = os.path.join(root, "store")
        _populate(cold_dir, snapshot=False)
        _populate(warm_dir, snapshot=True)
        _populate(store_dir, snapshot=True, with_store=True)
        cold_time, cold_report = _timed_best(lambda: _recover(cold_dir))
        warm_time, warm_report = _timed_best(lambda: _recover(warm_dir))
        store_time, store_report = _timed_best(lambda: _recover(store_dir))
    assert cold_report.entries == warm_report.entries == store_report.entries == entries
    assert warm_report.snapshot_loaded and not cold_report.snapshot_loaded
    assert warm_report.replayed == 0 and cold_report.replayed == entries
    assert store_report.store_snapshot_loaded and not warm_report.store_snapshot_loaded
    assert store_report.replayed == 0 and store_report.store_tail_records == 0
    return {
        "unit": "entries/s (restart recovery)",
        "baseline": {
            "path": "cold full-log replay",
            "entries_per_s": entries / cold_time,
            "entries": entries,
            "replayed_records": cold_report.replayed,
        },
        "bloom_warm": {
            "path": "bloom snapshot warm restart (store rebuilt from log)",
            "entries_per_s": entries / warm_time,
            "entries": entries,
            "replayed_records": warm_report.replayed,
            "snapshot_bytes": warm_report.snapshot_bytes,
        },
        "fast": {
            "path": "bloom+store snapshot warm restart",
            "entries_per_s": entries / store_time,
            "entries": entries,
            "replayed_records": store_report.replayed,
            "snapshot_bytes": store_report.snapshot_bytes,
            "store_snapshot_bytes": store_report.store_snapshot_bytes,
            "store_tail_records": store_report.store_tail_records,
        },
        "speedup": cold_time / store_time,
        "bloom_only_speedup": cold_time / warm_time,
    }


def _bench_service(scale: float) -> dict:
    """Live serving stack: real TCP gateway + one worker process per node.

    Unlike every other series this one crosses process and socket
    boundaries, so the absolute numbers depend on the machine (hence the
    recorded ``cpu_count``, which also tells tools/check_bench_floors.py
    to skip the committed-value comparison).  The before/after ratio is
    the concurrency win: one closed-loop client at pipeline depth 1 (every
    batch pays a full round trip before the next is sent) vs. a pool of
    pipelined clients saturating the same 4-node service.  The concurrent
    leg audits itself: every acknowledged fingerprint must still be a
    duplicate on re-lookup (zero lost acks), the invariant the serving
    durability contract is built on.
    """
    from repro.analysis.experiments.service import run_service

    fingerprints = max(10_000, int(80_000 * scale))
    nodes = 4
    batch_size = 256
    node_config = {"bloom_expected_items": max(50_000, fingerprints)}

    def _leg(clients: int, pipeline: int, audit: bool):
        result = run_service(
            num_nodes=nodes,
            clients=clients,
            pipeline=pipeline,
            batch_size=batch_size,
            fingerprints=fingerprints,
            duplicate_fraction=0.25,
            node_config=node_config,
            audit=audit,
            seed=29,
        )
        assert result.acknowledged == result.offered, result
        assert result.lost_acknowledged == 0, result
        return result

    baseline = _leg(clients=1, pipeline=1, audit=False)
    fast = _leg(clients=8, pipeline=4, audit=True)
    # The audit re-looks-up the *unique* acknowledged identities (the
    # duplicate_fraction collapses into the set), so checked < offered.
    assert 0 < fast.audit_checked <= fingerprints
    return {
        "unit": "fingerprints/s (live TCP service, worker processes)",
        "cpu_count": os.cpu_count() or 1,
        "baseline": {
            "path": "1 client x pipeline 1 (stop-and-wait)",
            "fingerprints_per_s": baseline.throughput,
            "fingerprints": fingerprints,
            "nodes": nodes,
            "batch_size": batch_size,
            "p50_latency_us": baseline.latency_us.get("p50", 0.0),
            "p99_latency_us": baseline.latency_us.get("p99", 0.0),
        },
        "fast": {
            "path": "8 clients x pipeline 4 (closed loop)",
            "fingerprints_per_s": fast.throughput,
            "fingerprints": fingerprints,
            "nodes": nodes,
            "batch_size": batch_size,
            "p50_latency_us": fast.latency_us.get("p50", 0.0),
            "p99_latency_us": fast.latency_us.get("p99", 0.0),
            "sheds": fast.sheds,
            "audited": fast.audit_checked,
            "lost_acknowledged": fast.lost_acknowledged,
        },
        "speedup": fast.throughput / baseline.throughput,
    }


def test_bench_hotpath(results_dir, scale):
    series = {
        "chunking": _bench_chunking(scale),
        "bloom_probe": _bench_bloom(scale),
        "cuckoo_ops": _bench_cuckoo(scale),
        "engine_events": _bench_engine(scale),
        "cluster_lookup": _bench_cluster(scale),
        "vectorized_lookup": _bench_vectorized(scale),
        "sweep_wall_clock": _bench_sweep(scale),
        "control_plane_tax": _bench_control_plane(scale),
        "recovery_time": _bench_recovery(scale),
        "service_throughput": _bench_service(scale),
    }
    if HAVE_NUMPY:
        # Optional ``perf`` extra: the series only exists where numpy
        # imports; its ``requires: numpy`` field turns absence into a named
        # skip in tools/check_bench_floors.py instead of a dropped-leg
        # failure.
        series["numpy_kernels"] = _bench_numpy(scale)

    payload = {
        "schema": "repro-shhc-bench/1",
        "generated_by": "benchmarks/test_bench_hotpath.py",
        "generated_at_unix": round(time.time(), 3),
        "scale": scale,
        "python": platform.python_version(),
        "platform": platform.platform(),
        "series": series,
    }
    BENCH_JSON.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n", encoding="utf-8")

    rows = []
    for name, entry in series.items():
        baseline = entry.get("baseline")
        fast = entry["fast"]

        def _headline(record):
            if record is None:
                return "-"
            for key in (
                "mb_per_s",
                "ops_per_s",
                "events_per_s",
                "fingerprints_per_s",
                "entries_per_s",
                "wall_clock_s",
                "p99_latency_us",
            ):
                if key in record:
                    return round(record[key], 2)
            return "-"

        rows.append(
            [
                name,
                entry["unit"],
                _headline(baseline),
                _headline(fast),
                round(entry["speedup"], 2) if "speedup" in entry else "-",
            ]
        )
    rendered = format_table(
        ["hot path", "unit", "baseline", "fast", "speedup"],
        rows,
        title=f"Data-plane hot-path throughput (scale={scale})",
    )
    record_result(results_dir, "hotpath", rendered)

    # Speedup floors.  This file is also collected by the functional tier-1
    # run (`pytest -x -q`), where a wall-clock assertion must never fail a
    # code gate -- tracing (--cov, debuggers) or a throttled machine can
    # compress timing ratios without any code defect.  The floors are
    # therefore only enforced when REPRO_BENCH_STRICT=1, which the dedicated
    # CI perf job sets (measured margins there: chunking ~6-7x vs the 5x
    # floor, bloom ~3.8-4x vs 3x; both sides of each ratio run in the same
    # process on the same data, so the ratios are machine-independent).
    if os.environ.get("REPRO_BENCH_STRICT") == "1":
        floors = {
            "chunking": 5.0,
            "bloom_probe": 3.0,
            "cuckoo_ops": 1.2,
            "engine_events": 1.1,
            # Raised from 2.0 with the vectorized data plane (packed digest
            # buffers + fused per-bucket kernels); a >= 4-core check below
            # holds the full measured margin.
            "cluster_lookup": 3.0,
            # Packed whole-batch lookup kernel vs the scalar reference
            # oracle on identical structures (same process, same data;
            # measured 1.5-1.9x, floor kept conservative).
            "vectorized_lookup": 1.25,
            # Virtual-time ratio (deterministic): degraded p99 must stay
            # measurably above steady p99 while the cost model is charging.
            "control_plane_tax": 1.2,
            # Warm (bloom+store snapshot) restart vs cold full-log replay:
            # the fast leg skips both the bloom replay and the per-record
            # store rebuild, so it clears the cold path comfortably; the
            # floor stays conservative to avoid timing fragility.
            "recovery_time": 1.3,
        }
        for name, floor in floors.items():
            assert series[name]["speedup"] >= floor, (name, floor, series[name])
        # Full vectorized-data-plane margin: 1.5x the PR-8 committed
        # cluster_lookup speedup (3.055).  Gated on >= 4 cores like the
        # other high floors -- small/throttled runners still get the 3.0
        # unconditional floor above.
        if (os.cpu_count() or 1) >= 4:
            assert series["cluster_lookup"]["speedup"] >= 4.58, series["cluster_lookup"]
        # The parallel-sweep speedup needs actual cores; a 1-CPU runner
        # honestly records ~1x, so the floor only applies at >= 4 cores.
        if series["sweep_wall_clock"]["cpu_count"] >= 4:
            assert series["sweep_wall_clock"]["speedup"] >= 2.0, series["sweep_wall_clock"]
        # Absolute service floor (the ISSUE acceptance number): the live
        # gateway + worker-process stack must sustain >= 50k fingerprints/s
        # end to end.  Crossing real sockets and processes, it needs real
        # cores -- gated like the sweep floor.
        service = series["service_throughput"]
        if service["cpu_count"] >= 4:
            assert service["fast"]["fingerprints_per_s"] >= 50_000.0, service
        # Columnar numpy data plane (the PR-10 acceptance number): the
        # duplicate-heavy end-to-end node serve must beat the packed-Python
        # path by >= 1.5x at full scale on a numpy-enabled multi-core box.
        # Gated on scale because the cache-miss working set shrinks with it,
        # and on cores like the other high floors; small/throttled runners
        # still record the honest ratio.
        if "numpy_kernels" in series and (os.cpu_count() or 1) >= 4 and scale >= 1.0:
            assert series["numpy_kernels"]["speedup"] >= 1.5, series["numpy_kernels"]
    # The JSON must carry both series of the before/after comparison.
    on_disk = json.loads(BENCH_JSON.read_text(encoding="utf-8"))
    assert on_disk["series"]["chunking"]["baseline"] and on_disk["series"]["chunking"]["fast"]
