"""Shared configuration for the benchmark harness.

Every benchmark regenerates one of the paper's tables or figures via the
runners in :mod:`repro.analysis.experiments`, records the headline metric
with pytest-benchmark, prints the rendered table (the same rows/series the
paper reports) and writes it to ``benchmarks/results/`` so EXPERIMENTS.md can
be refreshed from the files.

Scale knob
----------
The full-size experiments (100 000 requests, the complete 42-million
fingerprint mix) are unnecessarily slow for a regression run, so benchmarks
default to a reduced size that preserves every trend.  Set the environment
variable ``REPRO_BENCH_SCALE`` to scale them up or down, e.g.::

    REPRO_BENCH_SCALE=5 pytest benchmarks/ --benchmark-only

runs everything at 5x the default size (1.0 is the default).
"""

from __future__ import annotations

import os
from pathlib import Path

import pytest

RESULTS_DIR = Path(__file__).parent / "results"


def bench_scale() -> float:
    """Global size multiplier for benchmark workloads."""
    try:
        return max(0.05, float(os.environ.get("REPRO_BENCH_SCALE", "1.0")))
    except ValueError:
        return 1.0


@pytest.fixture(scope="session")
def results_dir() -> Path:
    RESULTS_DIR.mkdir(parents=True, exist_ok=True)
    return RESULTS_DIR


@pytest.fixture(scope="session")
def scale() -> float:
    return bench_scale()


def record_result(results_dir: Path, name: str, rendered: str) -> None:
    """Print a rendered experiment table and persist it under results/."""
    print()
    print(rendered)
    (results_dir / f"{name}.txt").write_text(rendered + "\n", encoding="utf-8")
