"""Benchmark: paper Figure 5 -- cluster throughput vs servers and batch size.

Replays the mixed Table-I workloads from two clients against 1-4 hybrid hash
nodes with batch sizes 1/128/2048.  Expected shape (checked by assertions):
batched configurations are roughly an order of magnitude faster than
unbatched, throughput grows with cluster size for batched requests, and the
128 and 2048 batch sizes end up within the same ballpark.
"""

from __future__ import annotations

from conftest import record_result

from repro.analysis.experiments import run_figure5


def test_bench_figure5(benchmark, results_dir, scale):
    workload_scale = 0.0005 * scale
    node_counts = (1, 2, 3, 4)
    batch_sizes = (1, 128, 2048)

    result = benchmark.pedantic(
        run_figure5,
        kwargs=dict(node_counts=node_counts, batch_sizes=batch_sizes, scale=workload_scale),
        rounds=1,
        iterations=1,
    )
    record_result(results_dir, "figure5", result.render())

    # Shape 1: batching buys about an order of magnitude at every cluster size.
    for nodes in node_counts:
        assert result.throughput(nodes, 128) > result.throughput(nodes, 1) * 5
        assert result.throughput(nodes, 2048) > result.throughput(nodes, 1) * 5

    # Shape 2: batched throughput grows with the number of servers.
    assert result.throughput(4, 128) > result.throughput(1, 128) * 1.8
    assert result.throughput(4, 2048) > result.throughput(1, 2048) * 1.8

    # Shape 3: 128 and 2048 behave similarly (within ~2x of each other).
    for nodes in (3, 4):
        ratio = result.throughput(nodes, 2048) / result.throughput(nodes, 128)
        assert 0.5 < ratio < 2.0
