"""Benchmarks: ablation studies (DESIGN.md experiments A, B and C).

These are not paper figures; they quantify the design choices the paper
argues for (hybrid RAM+SSD nodes, batching, scaling/replication as future
work), giving the reproduction its own paper-vs-design evidence.
"""

from __future__ import annotations

from conftest import record_result

from repro.analysis.experiments import (
    run_batch_tradeoff,
    run_scaling_ablation,
    run_tier_ablation,
)


def test_bench_ablation_tiers(benchmark, results_dir, scale):
    """Ablation A: hybrid node vs disk-index / DDFS / ChunkStash / RAM-only."""
    result = benchmark.pedantic(
        run_tier_ablation,
        kwargs=dict(scale=0.002 * scale),
        rounds=1,
        iterations=1,
    )
    record_result(results_dir, "ablation_tiers", result.render())

    disk = result.row("disk-index").mean_latency
    ddfs = result.row("ddfs").mean_latency
    chunkstash = result.row("chunkstash").mean_latency
    hybrid = result.row("shhc-hybrid").mean_latency
    # The hybrid layout must beat the disk-bound designs by a wide margin ...
    assert hybrid * 10 < disk
    assert hybrid < ddfs
    # ... and be competitive with the flash-optimised centralized design.
    assert hybrid < chunkstash * 2


def test_bench_ablation_batch_tradeoff(benchmark, results_dir, scale):
    """Ablation B: batch size vs throughput and per-request latency."""
    result = benchmark.pedantic(
        run_batch_tradeoff,
        kwargs=dict(batch_sizes=(1, 8, 32, 128, 512, 2048), scale=0.0003 * scale),
        rounds=1,
        iterations=1,
    )
    record_result(results_dir, "ablation_batch", result.render())

    throughputs = [point.throughput for point in result.points]
    latencies = [point.mean_request_latency for point in result.points]
    # Throughput rises monotonically (within noise) with batch size ...
    assert throughputs[-1] > throughputs[0] * 10
    # ... but each batched request waits longer: the paper's stated trade-off.
    assert latencies[-1] > latencies[0]


def test_bench_ablation_scaling(benchmark, results_dir, scale):
    """Ablation C: node join data movement and replication overhead."""
    result = benchmark.pedantic(
        run_scaling_ablation,
        kwargs=dict(scale=0.01 * scale),
        rounds=1,
        iterations=1,
    )
    record_result(results_dir, "ablation_scaling", result.render())

    # Consistent hashing should move close to 1/(N+1) of the entries, far
    # fewer than the range partitioner's full re-shard.
    assert result.moved_fraction_consistent < result.moved_fraction_range
    assert result.moved_fraction_consistent < 0.45
    # Replication factor 2 doubles stored entries but not lookup cost.
    assert 1.9 < result.replication_entry_overhead < 2.1
    assert result.replication_latency_overhead < 1.5
