"""Simulated datacenter deployment: the paper's Figure 2 architecture end to end.

Deploys clients, an HAProxy-style load balancer, web front-ends and an SHHC
cluster on the discrete-event simulator, replays the paper's mixed Table-I
workloads from two client machines, and prints throughput, latency and load
balance -- essentially a single cell of Figure 5 with full detail.

Run with::

    python examples/backup_service_sim.py [num_hash_nodes] [batch_size]
"""

from __future__ import annotations

import sys

from repro import ClusterConfig, HashNodeConfig, build_simulated_service
from repro.frontend import SimulatedClient
from repro.simulation import Simulator
from repro.workloads import table_i_mix


def main(num_nodes: int = 4, batch_size: int = 128) -> None:
    scale = 0.001               # fraction of the full 42M-fingerprint mix
    num_clients = 2             # the paper uses two client machines

    print(f"simulating: {num_nodes} hash nodes, batch size {batch_size}, "
          f"{num_clients} clients, workload scale {scale}\n")

    sim = Simulator()
    deployment = build_simulated_service(
        sim,
        ClusterConfig(
            num_nodes=num_nodes,
            node=HashNodeConfig(ram_cache_entries=200_000, bloom_expected_items=1_000_000),
        ),
        num_clients=num_clients,
        num_web_servers=3,
    )

    shares = table_i_mix(seed=0).split_among_clients(num_clients, scale=scale)
    clients = []
    for index, share in enumerate(shares):
        client = SimulatedClient(
            client_id=f"client-{index}",
            rpc=deployment.network.rpc,
            load_balancer=deployment.load_balancer,
            fingerprints=share,
            batch_size=batch_size,
            sim=sim,
        )
        clients.append(client)
        client.start()

    sim.run()

    total = sum(client.stats.fingerprints_sent for client in clients)
    elapsed = max(client.stats.finished_at for client in clients)
    duplicates = sum(client.stats.duplicates_found for client in clients)
    metrics = deployment.cluster.metrics()

    print("results (simulated time)")
    print(f"  fingerprints processed : {total:,}")
    print(f"  completion time        : {elapsed * 1e3:.1f} ms")
    print(f"  cluster throughput     : {total / elapsed:,.0f} chunks/s")
    print(f"  duplicates found       : {duplicates:,} ({duplicates / total:.0%})")
    for client in clients:
        latency = client.stats.request_latency
        print(f"  {client.client_id}: mean request latency "
              f"{latency.mean * 1e3:.2f} ms, p99 {latency.percentile(0.99) * 1e3:.2f} ms")

    print("\nhash cluster")
    print(f"  answered from RAM      : {metrics.ram_hit_ratio():.0%} of lookups")
    breakdown = metrics.tier_breakdown()
    print(f"  tier breakdown         : ram={breakdown['ram']:,} ssd={breakdown['ssd']:,} "
          f"new={breakdown['new']:,}")
    print("  storage distribution   :")
    for node, share in sorted(deployment.cluster.storage_distribution().fractions().items()):
        print(f"    {node}: {share:.1%}")

    print("\nweb front-end")
    for name, count in sorted(deployment.load_balancer.assignments().items()):
        print(f"  {name}: {count} requests")

    print(f"\nsimulator: {sim.events_processed:,} events executed")


if __name__ == "__main__":
    nodes = int(sys.argv[1]) if len(sys.argv) > 1 else 4
    batch = int(sys.argv[2]) if len(sys.argv) > 2 else 128
    main(nodes, batch)
