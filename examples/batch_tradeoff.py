"""Batch size trade-off study (the open question in the paper's §V).

Sweeps the query batch size on the simulated deployment and prints the
throughput / latency trade-off curve: batching multiplies throughput by
amortising per-message costs, but each chunk's verdict waits for its whole
batch, so per-request latency grows.  The "knee" of the curve is the batch
size the paper suggests looking for.

Uses the scenario API (``docs/scenarios.md``): one declarative spec, one
``run_scenario`` call, uniform machine-readable metrics.  The same study
from the shell::

    repro run batch_tradeoff --set batch_sizes=1,4,16,64,256,1024,2048 \
                             --set scale=0.0005 --json batch_tradeoff.json

Run with::

    python examples/batch_tradeoff.py
"""

from __future__ import annotations

from repro.analysis.reporting import format_table
from repro.scenarios import run_scenario


def main() -> None:
    batch_sizes = [1, 4, 16, 64, 256, 1024, 2048]
    print(f"sweeping batch sizes {batch_sizes} on a 4-node cluster...\n")
    result = run_scenario(
        "batch_tradeoff", batch_sizes=batch_sizes, num_nodes=4, scale=0.0005
    )
    print(result.render())

    points = result.metrics["points"]
    # Identify the knee: the smallest batch reaching 80% of peak throughput.
    peak = result.metrics["throughput"]
    knee = next(point for point in points if point["throughput"] >= 0.8 * peak)
    print(
        f"\nknee of the curve: batch size {knee['batch_size']} reaches "
        f"{knee['throughput']:,.0f} chunk/s ({knee['throughput'] / peak:.0%} of peak) at "
        f"{knee['mean_request_latency_ms']:.2f} ms per request"
    )

    rows = [
        [point["batch_size"], round(point["throughput"] / points[0]["throughput"], 1)]
        for point in points
    ]
    print()
    print(format_table(["batch", "speedup vs batch=1"], rows))


if __name__ == "__main__":
    main()
