"""Quickstart: use SHHC as a deduplicating backup library.

Builds the full backup service (web front-ends, a 4-node hybrid hash
cluster and a cloud object store) in-process, backs up two clients' data and
shows how deduplication cuts both upload traffic and stored bytes.

Run with::

    python examples/quickstart.py
"""

from __future__ import annotations

import os
import random

from repro import BackupService, ClusterConfig, HashNodeConfig


def make_laptop_image(seed: int, size_chunks: int = 512, chunk_size: int = 8192) -> bytes:
    """Synthesise a 'disk image': mostly shared OS bytes plus user data."""
    shared = random.Random(0)          # same OS files on every laptop
    personal = random.Random(seed)     # user-specific files
    chunks = []
    for index in range(size_chunks):
        rng = shared if index < size_chunks * 3 // 4 else personal
        chunks.append(bytes(rng.getrandbits(8) for _ in range(chunk_size)))
    return b"".join(chunks)


def main() -> None:
    service = BackupService(
        cluster_config=ClusterConfig(
            num_nodes=4,
            node=HashNodeConfig(ram_cache_entries=100_000, bloom_expected_items=1_000_000),
        ),
        num_web_servers=2,
        batch_size=128,
    )

    print("SHHC quickstart: backing up two laptops that share most of their data\n")

    alice_image = make_laptop_image(seed=1)
    bob_image = make_laptop_image(seed=2)

    plan_alice = service.backup("alice-laptop", alice_image)
    print(f"alice: {plan_alice.total_chunks} chunks, "
          f"{len(plan_alice.to_upload)} uploaded, "
          f"bandwidth savings {plan_alice.bandwidth_savings:.0%}")

    plan_bob = service.backup("bob-laptop", bob_image)
    print(f"bob:   {plan_bob.total_chunks} chunks, "
          f"{len(plan_bob.to_upload)} uploaded, "
          f"bandwidth savings {plan_bob.bandwidth_savings:.0%}  "
          f"(the shared OS chunks were already in the cloud)")

    # A second, nearly unchanged backup of alice's laptop.
    alice_image_v2 = alice_image[:-8192 * 8] + os.urandom(8192 * 8)
    plan_v2 = service.backup("alice-laptop", alice_image_v2)
    print(f"alice (day 2): {len(plan_v2.to_upload)} of {plan_v2.total_chunks} chunks uploaded")

    stats = service.stats()
    logical = plan_alice.logical_bytes + plan_bob.logical_bytes + plan_v2.logical_bytes
    physical = service.physical_bytes()
    print("\ncluster state")
    print(f"  distinct fingerprints stored : {service.stored_fingerprints():,}")
    print(f"  logical bytes backed up      : {logical:,}")
    print(f"  physical bytes in the cloud  : {physical:,}")
    print(f"  dedup ratio                  : {logical / physical:.2f}x")
    print("  hash entries per node        :")
    for node, share in sorted(stats["storage_distribution"].items()):
        print(f"    {node}: {share:.1%}")


if __name__ == "__main__":
    main()
