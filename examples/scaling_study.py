"""Elastic scaling and fault tolerance study (the paper's future-work features).

Both sections now run on the unified scenario API (``docs/scenarios.md``):

1. the ``scaling_ablation`` preset measures how much data migrates when a
   fifth node joins (range partitioning vs consistent hashing) and the
   storage/latency overhead of replication factor 2;
2. a ``failover`` sweep over replication factor x outage density -- with a
   grey-failure point riding along -- shows what each extra replica buys
   in dedup accuracy as outages get denser.

The same sweep from the shell::

    repro sweep failover --set scale=0.002 \
        --axis replication_factor=1,2,3 --axis outage_density=0.2,0.4 \
        --json failover_sweep.json

Run with::

    python examples/scaling_study.py
"""

from __future__ import annotations

from repro.scenarios import SweepGrid, run_scenario, run_sweep, spec_for


def scaling_section() -> None:
    print("1. elastic scaling: adding a fifth node\n")
    result = run_scenario("scaling_ablation", scale=0.01, num_nodes=4, virtual_nodes=128)
    metrics = result.metrics
    for label, moved, balance in (
        ("range partitioning", "moved_fraction_range", "balance_after_range"),
        ("consistent hashing (128 vnodes)", "moved_fraction_consistent", "balance_after_consistent"),
    ):
        print(f"  {label}:")
        print(f"    entries moved on join : {metrics[moved]:.0%} of {metrics['fingerprints']:,}")
        print(f"    post-join max/mean    : {metrics[balance]:.3f}")
        print()
    print(
        f"  replication factor 2  : {metrics['replication_entry_overhead']:.2f}x stored "
        f"entries, {metrics['replication_latency_overhead']:.2f}x mean lookup cost\n"
    )


def failover_sweep_section() -> None:
    print("2. fault tolerance: replication factor x outage density sweep\n")
    sweep = run_sweep(
        spec_for("failover", scale=0.001),
        SweepGrid(
            {
                "replication_factor": [1, 2, 3],
                "outage_density": [0.2, 0.4],
                "failure_rate": [0.0, 0.05],  # 0.05 = grey-failing node in the mix
            }
        ),
    )
    print(sweep.render())
    worst = min(
        (run for run in sweep.runs if run.ok),
        key=lambda run: run.metrics["dedup_accuracy"],
    )
    print(
        f"\n  worst point: {worst.point} -> accuracy "
        f"{worst.metrics['dedup_accuracy']:.2%}, {worst.metrics['unserved']} unserved"
    )
    replicated = [
        run for run in sweep.runs if run.ok and run.point["replication_factor"] >= 2
    ]
    print(
        f"  with k >= 2: every one of the {len(replicated)} points keeps "
        f"{min(run.metrics['dedup_accuracy'] for run in replicated):.0%} accuracy"
    )
    sweep.write_json("failover_sweep.json")
    print("  wrote failover_sweep.json (machine-readable grid)")


def main() -> None:
    scaling_section()
    failover_sweep_section()


if __name__ == "__main__":
    main()
