"""Elastic scaling and fault tolerance study (the paper's future-work features).

Loads a 4-node cluster with a Home-Directories-profile trace, then:

1. adds a fifth node and reports how much data migrated and how balanced the
   cluster is afterwards (range partitioning vs consistent hashing),
2. fails a node in a replicated cluster and shows that no fingerprint is lost
   and the replication factor is restored.

Run with::

    python examples/scaling_study.py
"""

from __future__ import annotations

from repro import ClusterConfig, HashNodeConfig, SHHCCluster, TraceGenerator
from repro.core import MembershipManager, ReplicationController
from repro.workloads import HOME_DIR


def build_cluster(virtual_nodes: int, replication: int = 1) -> SHHCCluster:
    return SHHCCluster(
        ClusterConfig(
            num_nodes=4,
            node=HashNodeConfig(ram_cache_entries=100_000, bloom_expected_items=500_000),
            virtual_nodes=virtual_nodes,
            replication_factor=replication,
        )
    )


def scaling_section(fingerprints) -> None:
    print("1. elastic scaling: adding a fifth node\n")
    for label, virtual_nodes in (("range partitioning", 0), ("consistent hashing (128 vnodes)", 128)):
        cluster = build_cluster(virtual_nodes)
        cluster.lookup_batch(fingerprints)
        manager = MembershipManager(cluster)
        report = manager.add_node("hashnode-4")
        balance = cluster.storage_distribution()
        print(f"  {label}:")
        print(f"    entries moved        : {report.entries_moved:,} "
              f"({report.moved_fraction:.0%} of {report.entries_before:,})")
        print(f"    post-join max/mean   : {balance.max_over_mean:.3f}")
        # Every fingerprint must still be found after the migration.
        missing = sum(1 for fp in fingerprints if fp not in cluster)
        print(f"    fingerprints missing : {missing}")
        print()


def fault_tolerance_section(fingerprints) -> None:
    print("2. fault tolerance: replication factor 2, one node fails\n")
    cluster = build_cluster(virtual_nodes=0, replication=2)
    cluster.lookup_batch(fingerprints)
    controller = ReplicationController(cluster)

    healthy = controller.consistency_report()
    print(f"  before failure : {healthy.total_fingerprints:,} fingerprints, "
          f"fully replicated {healthy.fully_replicated:,}")

    created = controller.handle_failure("hashnode-1")
    after = controller.consistency_report()
    lost = sum(1 for fp in fingerprints if not cluster.lookup(fp).is_duplicate)
    print(f"  hashnode-1 fails: {created:,} replacement copies created")
    print(f"  after repair   : fully replicated {after.fully_replicated:,}, "
          f"lost {after.lost}, unanswerable lookups {lost}")

    restored = controller.handle_recovery("hashnode-1")
    print(f"  node rejoins   : {restored:,} copies rebuilt, "
          f"healthy={controller.consistency_report().is_healthy}")


def main() -> None:
    profile = HOME_DIR.scaled(0.01)
    print(f"workload: {profile.name}, {profile.fingerprints:,} fingerprints "
          f"({profile.redundancy:.0%} redundant)\n")
    fingerprints = list(TraceGenerator(profile, seed=3).generate())
    scaling_section(fingerprints)
    fault_tolerance_section(fingerprints)


if __name__ == "__main__":
    main()
