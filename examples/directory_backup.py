"""File-level backup: protect a directory tree with SHHC deduplication.

Creates a small synthetic "project directory", backs it up, edits a few
files, backs it up again, shows the snapshot diff and how little the second
backup had to upload, and finally restores the first snapshot to prove the
round trip.

Run with::

    python examples/directory_backup.py
"""

from __future__ import annotations

import os
import shutil
import tempfile

from repro import ClusterConfig, HashNodeConfig, SHHCCluster
from repro.dedup import ContentDefinedChunker, DirectoryArchiver
from repro.storage import CloudObjectStore


def make_project(root: str) -> None:
    """Write a synthetic project tree: sources, a big binary asset, docs."""
    rng = os.urandom
    files = {
        "src/main.py": b"print('hello world')\n" * 200,
        "src/util.py": b"def helper():\n    return 42\n" * 300,
        "assets/texture.bin": rng(400_000),
        "assets/model.bin": rng(250_000),
        "docs/manual.txt": b"The quick brown fox jumps over the lazy dog.\n" * 500,
    }
    for path, data in files.items():
        destination = os.path.join(root, path)
        os.makedirs(os.path.dirname(destination), exist_ok=True)
        with open(destination, "wb") as handle:
            handle.write(data)


def edit_project(root: str) -> None:
    """Simulate a day of work: edit one source file, append to the manual."""
    with open(os.path.join(root, "src/main.py"), "ab") as handle:
        handle.write(b"print('new feature')\n" * 50)
    with open(os.path.join(root, "docs/manual.txt"), "ab") as handle:
        handle.write(b"Appendix: troubleshooting.\n" * 100)
    with open(os.path.join(root, "src/new_module.py"), "wb") as handle:
        handle.write(b"VALUE = 7\n" * 100)


def main() -> None:
    workdir = tempfile.mkdtemp(prefix="shhc-example-")
    project = os.path.join(workdir, "project")
    restored = os.path.join(workdir, "restored")
    try:
        make_project(project)

        cluster = SHHCCluster(
            ClusterConfig(
                num_nodes=4,
                node=HashNodeConfig(ram_cache_entries=100_000, bloom_expected_items=1_000_000),
            )
        )
        archiver = DirectoryArchiver(
            index=cluster,
            object_store=CloudObjectStore(),
            chunker=ContentDefinedChunker(average_size=4096),
            catalog_path=os.path.join(workdir, "catalog.json"),
        )

        day1 = archiver.backup_directory(project, "day-1")
        print(f"day-1 backup: {day1.files_scanned} files, {day1.chunks_seen} chunks, "
              f"{day1.chunks_uploaded} uploaded ({day1.bytes_uploaded:,} bytes)")

        edit_project(project)
        day2 = archiver.backup_directory(project, "day-2")
        print(f"day-2 backup: {day2.files_scanned} files, {day2.chunks_seen} chunks, "
              f"{day2.chunks_uploaded} uploaded ({day2.bytes_uploaded:,} bytes) "
              f"-> {day2.dedup_savings:.0%} of bytes deduplicated")

        diff = archiver.diff("day-1", "day-2")
        print("\nchanges between snapshots")
        for kind in ("added", "modified", "unchanged", "removed"):
            print(f"  {kind:10s}: {', '.join(diff[kind]) or '(none)'}")

        written = archiver.restore_directory("day-1", restored)
        original = open(os.path.join(project, "assets/texture.bin"), "rb").read()
        recovered = open(os.path.join(restored, "assets/texture.bin"), "rb").read()
        print(f"\nrestored day-1 snapshot: {written} files, "
              f"binary asset identical: {original == recovered}")

        print(f"\nhash cluster: {len(cluster):,} distinct fingerprints across "
              f"{cluster.num_nodes} nodes "
              f"(balance max/mean = {cluster.storage_distribution().max_over_mean:.2f})")
    finally:
        shutil.rmtree(workdir, ignore_errors=True)


if __name__ == "__main__":
    main()
