"""Crude stdlib line-coverage measurement for the tier-1 suite.

The container that grows this repo has no ``coverage``/``pytest-cov``
installed, but CI pins ``--cov-fail-under`` at a measured baseline.  This
script produces that baseline with nothing but ``sys.settrace``: it runs the
full pytest suite with a global tracer that records executed lines in
``src/repro`` and compares them against the executable lines reported by
each module's compiled code objects (``co_lines``).

The number it prints is *close to* but not identical to coverage.py's
statement coverage (methodology differs around multi-line statements and
excluded pragmas), so the CI floor is pinned a few points below it.

Usage::

    PYTHONPATH=src python tools/measure_coverage.py -q

Arguments are passed through to pytest.  Expect a large slowdown (pure
Python tracing); run it in the background.
"""

from __future__ import annotations

import json
import os
import sys
import threading

ROOT = os.path.abspath(os.path.join(os.path.dirname(__file__), "..", "src", "repro"))

_hits = {}


def _line_tracer(frame, event, arg):
    if event == "line":
        _hits[frame.f_code.co_filename].add(frame.f_lineno)
    return _line_tracer


def _call_tracer(frame, event, arg):
    if event != "call":
        return None
    filename = frame.f_code.co_filename
    if not filename.startswith(ROOT):
        return None
    _hits.setdefault(filename, set()).add(frame.f_lineno)
    return _line_tracer


def _executable_lines(path: str):
    """Line numbers the compiled module can actually execute."""
    with open(path, "r", encoding="utf-8") as handle:
        source = handle.read()
    lines = set()
    stack = [compile(source, path, "exec")]
    while stack:
        code = stack.pop()
        for _start, _end, lineno in code.co_lines():
            if lineno is not None:
                lines.add(lineno)
        for const in code.co_consts:
            if hasattr(const, "co_lines"):
                stack.append(const)
    return lines


def main() -> int:
    import pytest

    threading.settrace(_call_tracer)
    sys.settrace(_call_tracer)
    try:
        exit_code = pytest.main(sys.argv[1:])
    finally:
        sys.settrace(None)
        threading.settrace(None)

    total_executable = 0
    total_hit = 0
    per_file = {}
    for dirpath, _dirnames, filenames in os.walk(ROOT):
        for name in sorted(filenames):
            if not name.endswith(".py"):
                continue
            path = os.path.join(dirpath, name)
            executable = _executable_lines(path)
            hit = _hits.get(path, set()) & executable
            total_executable += len(executable)
            total_hit += len(hit)
            rel = os.path.relpath(path, ROOT)
            per_file[rel] = {
                "executable": len(executable),
                "hit": len(hit),
                "pct": round(100.0 * len(hit) / len(executable), 1) if executable else 100.0,
            }

    pct = 100.0 * total_hit / total_executable if total_executable else 0.0
    report = {
        "total_pct": round(pct, 2),
        "total_hit": total_hit,
        "total_executable": total_executable,
        "files": per_file,
    }
    with open("coverage_baseline.json", "w", encoding="utf-8") as handle:
        json.dump(report, handle, indent=2, sort_keys=True)
    print(f"\nline coverage (settrace approximation): {pct:.2f}% "
          f"({total_hit}/{total_executable} lines); details in coverage_baseline.json")
    return exit_code


if __name__ == "__main__":
    sys.exit(main())
