#!/usr/bin/env python
"""Perf guard: fail when a freshly measured speedup regresses vs. committed.

Compares every ``speedup`` recorded in a fresh ``BENCH_hotpath.json``
against the value committed in the repository.  A fresh speedup below
``floor_ratio`` (default 0.8) of the committed one fails the check, so a
PR that slows a fast path down gets caught at CI time rather than three
PRs later.  Speedups are same-process before/after ratios, so the check
is machine-independent; the 0.8 margin absorbs scheduler noise.

Series present only in the fresh file (newly added benchmarks) pass; a
series that *disappears* fails loudly (the message names the series that
survived), so a leg cannot be silently dropped.  Series that record a
``cpu_count`` (machine-dependent wall-clock legs: ``sweep_wall_clock``,
``service_throughput``) must still be *present*, but their committed
speedup is not compared across machines -- the benchmark itself enforces
their absolute floors under ``REPRO_BENCH_STRICT`` on capable boxes.

A committed series may declare ``"requires": "<module>"`` to mark itself
conditional on an optional dependency (the ``numpy_kernels`` legs need
the ``perf`` extra).  When that module is *not* importable on the runner
doing the check, a missing conditional series is a named skip rather
than a failure -- so the no-extras CI leg doesn't fail on benchmarks it
could never have run.  When the module *is* importable, the series is
held to the same presence + floor contract as everything else.

Usage (the CI hotpath job)::

    git show HEAD:BENCH_hotpath.json > committed_bench.json
    REPRO_BENCH_SCALE=0.25 python -m pytest benchmarks/test_bench_hotpath.py -q
    python tools/check_bench_floors.py committed_bench.json BENCH_hotpath.json
"""

from __future__ import annotations

import argparse
import importlib.util
import json
import sys


def requirement_available(requirement: str) -> bool:
    """True when the optional dependency named by ``requires`` is importable."""
    try:
        return importlib.util.find_spec(requirement) is not None
    except (ImportError, ValueError):
        return False


def check_floors(committed: dict, fresh: dict, floor_ratio: float, skips: list = None) -> list:
    """Return a list of human-readable failures (empty = pass).

    When ``skips`` is a list, skip messages for conditional series whose
    ``requires`` module is absent on this runner are appended to it.
    """
    failures = []
    if skips is None:
        skips = []
    committed_series = committed.get("series", {})
    fresh_series = fresh.get("series", {})
    for name, entry in committed_series.items():
        if name not in fresh_series:
            requires = entry.get("requires")
            if requires is not None and not requirement_available(requires):
                skips.append(f"{name}: skipped (requires {requires}, absent on this runner)")
                continue
            available = ", ".join(sorted(fresh_series)) or "(none)"
            failures.append(
                f"{name}: series disappeared from the fresh benchmark -- the "
                f"committed file records it but the fresh run only produced: "
                f"{available}.  Dropping a benchmark leg requires removing it "
                f"from the committed BENCH_hotpath.json in the same change, "
                f"not skipping it silently."
            )
            continue
        recorded = entry.get("speedup")
        if recorded is None:
            continue  # series without a before/after ratio (nothing to guard)
        if "cpu_count" in entry:
            # A series that records its cpu_count declares itself
            # machine-dependent (the parallel-sweep wall clock scales with
            # cores, unlike the same-process before/after ratios), so a
            # committed-value floor would compare different machines.  The
            # benchmark enforces its own absolute floor under
            # REPRO_BENCH_STRICT on boxes with enough cores.
            continue
        floor = floor_ratio * recorded
        measured = fresh_series[name].get("speedup")
        if measured is None:
            failures.append(f"{name}: fresh benchmark lost its 'speedup' field")
        elif measured < floor:
            failures.append(
                f"{name}: speedup {measured:.2f} fell below "
                f"{floor:.2f} (= {floor_ratio} x committed {recorded:.2f})"
            )
    return failures


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("committed", help="BENCH_hotpath.json as committed (git show HEAD:...)")
    parser.add_argument("fresh", help="freshly generated BENCH_hotpath.json")
    parser.add_argument("--floor-ratio", type=float, default=0.8,
                        help="fraction of the committed speedup that must be met (default 0.8)")
    args = parser.parse_args(argv)
    with open(args.committed, "r", encoding="utf-8") as handle:
        committed = json.load(handle)
    with open(args.fresh, "r", encoding="utf-8") as handle:
        fresh = json.load(handle)
    skips = []
    failures = check_floors(committed, fresh, args.floor_ratio, skips=skips)
    for skip in skips:
        print(f"perf floor skipped: {skip}")
    if failures:
        for failure in failures:
            print(f"PERF REGRESSION: {failure}", file=sys.stderr)
        return 1
    skipped_names = {skip.split(":", 1)[0] for skip in skips}
    guarded = sorted(
        name
        for name, entry in committed.get("series", {}).items()
        if "speedup" in entry and "cpu_count" not in entry and name not in skipped_names
    )
    print(f"perf floors ok ({args.floor_ratio} x committed) for: {', '.join(guarded)}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
