#!/usr/bin/env python
"""cProfile driver for the two throughput-critical paths.

Prints the top cumulative-time functions for

* a **cluster-lookup run**: the immediate-mode routed-batch path the
  ``cluster_lookup`` series in ``BENCH_hotpath.json`` measures (16k
  fingerprints through a 4-node replicated cluster in 128-fingerprint
  batches), and
* a **sweep run**: a small ``run_sweep`` grid over the failover preset,
  the per-point cost the parallel sweep executor amortises.

Usage::

    PYTHONPATH=src python tools/profile_hotpath.py            # both targets
    PYTHONPATH=src python tools/profile_hotpath.py cluster    # one target
    PYTHONPATH=src python tools/profile_hotpath.py sweep --top 30

Perf PRs should start from this data: optimise what is hot, pin what must
stay byte-identical (see ``tests/test_routed_batch_equivalence.py``).
"""

from __future__ import annotations

import argparse
import cProfile
import pstats
import random
import sys


def profile_cluster(top: int, requests: int) -> None:
    """Profile the immediate-mode cluster lookup path (cluster_lookup bench)."""
    from repro.core.cluster import SHHCCluster
    from repro.core.config import ClusterConfig, HashNodeConfig
    from repro.dedup.fingerprint import synthetic_fingerprint

    batch_size = 128
    config = ClusterConfig(
        num_nodes=4,
        replication_factor=2,
        node=HashNodeConfig(
            ram_cache_entries=4_096,
            bloom_expected_items=max(20_000, requests),
            ssd_buckets=1 << 12,
        ),
    )
    cluster = SHHCCluster(config)
    rng = random.Random(7)
    fingerprints = [
        synthetic_fingerprint(rng.randrange(max(1, requests // 2)))
        for _ in range(requests)
    ]

    def run() -> int:
        duplicates = 0
        for start in range(0, len(fingerprints), batch_size):
            for result in cluster.lookup_batch(fingerprints[start : start + batch_size]):
                duplicates += result.is_duplicate
        return duplicates

    _profile_one(f"cluster lookup ({requests} fingerprints, batch={batch_size})", run, top)


def profile_sweep(top: int) -> None:
    """Profile one small failover sweep (the per-grid-point cost)."""
    from repro.scenarios import SweepGrid, run_sweep, spec_for

    spec = spec_for("failover", scale=0.0005)
    grid = SweepGrid(axes={"replication_factor": [1, 2]})

    _profile_one("sweep: failover x {replication_factor: [1, 2]}",
                 lambda: run_sweep(spec, grid), top)


def _profile_one(label: str, fn, top: int) -> None:
    print(f"=== {label} ===")
    profiler = cProfile.Profile()
    profiler.enable()
    fn()
    profiler.disable()
    stats = pstats.Stats(profiler, stream=sys.stdout)
    stats.strip_dirs().sort_stats("cumulative").print_stats(top)


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("target", nargs="?", default="all",
                        choices=("all", "cluster", "sweep"))
    parser.add_argument("--top", type=int, default=20,
                        help="how many functions to print (default 20)")
    parser.add_argument("--requests", type=int, default=16_000,
                        help="cluster run size in fingerprints (default 16000)")
    args = parser.parse_args(argv)
    if args.target in ("all", "cluster"):
        profile_cluster(args.top, args.requests)
    if args.target in ("all", "sweep"):
        profile_sweep(args.top)
    return 0


if __name__ == "__main__":
    sys.exit(main())
